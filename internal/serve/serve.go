package serve

import (
	"fmt"

	"snacc/internal/ethernet"
	"snacc/internal/obs"
	"snacc/internal/sim"
	"snacc/internal/streamer"
	"snacc/internal/workload"
)

// Config tunes the serving tier. The zero value of every field selects the
// documented default.
type Config struct {
	// DispatchDepth bounds requests decoded off the wire but not yet
	// issued to the backend. This is the knob that closes the backpressure
	// loop: a full dispatch queue stalls the receive process, the MAC's
	// rx FIFO fills, and 802.3x pause frames throttle the client.
	// Default 256.
	DispatchDepth int
	// DispatchBatch is how many queued requests the dispatcher issues to
	// the backend per wakeup (the doorbell-batching idea applied to RPC
	// dispatch). Default 16.
	DispatchBatch int
	// FrameBatch caps the request/response capsules coalesced into one
	// Ethernet frame. Default 32.
	FrameBatch int
	// ClientBacklog bounds capsules the open-loop client holds while the
	// link is paused; arrivals beyond it are shed oldest-first and counted
	// as drops. Default 4096.
	ClientBacklog int
	// LaneWindow bounds requests in flight per backend lane; the
	// dispatcher blocks at the cap, which is what fills the dispatch
	// queue when the backend is slow. Default 64.
	LaneWindow int
	// RetryTick is the client's poll interval while the link refuses new
	// frames. Default 2µs.
	RetryTick sim.Time
	// Ethernet configures both MACs; the zero value means
	// ethernet.DefaultConfig (100 G, pause enabled).
	Ethernet ethernet.Config
}

func (c Config) withDefaults() Config {
	if c.DispatchDepth == 0 {
		c.DispatchDepth = 256
	}
	if c.DispatchBatch == 0 {
		c.DispatchBatch = 16
	}
	if c.FrameBatch == 0 {
		c.FrameBatch = 32
	}
	if c.ClientBacklog == 0 {
		c.ClientBacklog = 4096
	}
	if c.LaneWindow == 0 {
		c.LaneWindow = 64
	}
	if c.RetryTick == 0 {
		c.RetryTick = 2 * sim.Microsecond
	}
	if c.Ethernet.BitsPerSec == 0 {
		c.Ethernet = ethernet.DefaultConfig()
	}
	return c
}

func (c Config) validate() error {
	switch {
	case c.DispatchDepth < 1:
		return fmt.Errorf("serve: dispatch depth must be positive")
	case c.DispatchBatch < 1 || c.DispatchBatch > c.DispatchDepth:
		return fmt.Errorf("serve: dispatch batch must be in [1, depth]")
	case c.FrameBatch < 1:
		return fmt.Errorf("serve: frame batch must be positive")
	case c.ClientBacklog < 1:
		return fmt.Errorf("serve: client backlog must be positive")
	case c.LaneWindow < 1:
		return fmt.Errorf("serve: lane window must be positive")
	case c.RetryTick <= 0:
		return fmt.Errorf("serve: retry tick must be positive")
	}
	return nil
}

// Backend is the storage side the dispatcher feeds. Lanes are independent
// in-order pipelines: completions on a lane return in issue order, which is
// exactly the Streamer client contract (one lane) and the TenantHub
// contract (one lane per tenant).
type Backend interface {
	Lanes() int
	ReadAsync(p *sim.Proc, lane int, addr uint64, n int64)
	ConsumeRead(p *sim.Proc, lane int) error
	WriteAsync(p *sim.Proc, lane int, addr uint64, n int64)
	WaitWrite(p *sim.Proc, lane int) error
}

// streamerBackend adapts a single streamer.Client as a one-lane Backend.
type streamerBackend struct{ c *streamer.Client }

// NewStreamerBackend wraps the plain Streamer client.
func NewStreamerBackend(c *streamer.Client) Backend { return streamerBackend{c} }

func (b streamerBackend) Lanes() int { return 1 }
func (b streamerBackend) ReadAsync(p *sim.Proc, _ int, addr uint64, n int64) {
	b.c.ReadAsync(p, addr, n)
}
func (b streamerBackend) ConsumeRead(p *sim.Proc, _ int) error {
	_, _, err := b.c.ConsumeReadErr(p)
	return err
}
func (b streamerBackend) WriteAsync(p *sim.Proc, _ int, addr uint64, n int64) {
	b.c.WriteAsync(p, addr, n, nil)
}
func (b streamerBackend) WaitWrite(p *sim.Proc, _ int) error { return b.c.WaitWriteErr(p) }

// hubBackend adapts a TenantHub as a lane-per-tenant Backend; lane i maps
// to tenant i's window-relative address space.
type hubBackend struct{ cl []*streamer.TenantClient }

// NewHubBackend wraps a TenantHub, one lane per tenant.
func NewHubBackend(h *streamer.TenantHub) Backend {
	cl := make([]*streamer.TenantClient, h.Tenants())
	for i := range cl {
		cl[i] = h.Client(i)
	}
	return hubBackend{cl}
}

func (b hubBackend) Lanes() int { return len(b.cl) }
func (b hubBackend) ReadAsync(p *sim.Proc, lane int, addr uint64, n int64) {
	b.cl[lane].ReadAsync(p, addr, n)
}
func (b hubBackend) ConsumeRead(p *sim.Proc, lane int) error {
	_, _, err := b.cl[lane].ConsumeReadErr(p)
	return err
}
func (b hubBackend) WriteAsync(p *sim.Proc, lane int, addr uint64, n int64) {
	b.cl[lane].WriteAsync(p, addr, n, nil)
}
func (b hubBackend) WaitWrite(p *sim.Proc, lane int) error { return b.cl[lane].WaitWriteErr(p) }

// pending is one request the client has generated but not yet put on the
// wire.
type pending struct {
	req Request
	due sim.Time
}

// Tier wires an open-loop client population to a storage backend over one
// simulated Ethernet link. The client side (its own shard domain under
// NewCross) generates timed arrivals, coalesces request capsules into
// frames, and sheds load once the paused link backs its bounded backlog up;
// the server side decodes frames, tracks connections, and batches requests
// into the backend, blocking — and therefore pausing the wire — when the
// dispatch queue fills. All state is partitioned by side: client processes
// touch only client fields, server processes only server fields, and the
// two communicate exclusively through encoded frames, which is what keeps
// the sharded rig race-free and deterministic.
type Tier struct {
	cfg     Config
	spec    workload.OpenLoopSpec
	backend Backend

	cliK, srvK *sim.Kernel
	cliMAC     *ethernet.MAC
	srvMAC     *ethernet.MAC

	// Client-side state.
	gen         *workload.OpenLoop
	pendq       []pending
	outstanding map[uint64]sim.Time
	started     bool
	startAt     sim.Time
	lastResp    sim.Time
	sent        int64
	dropped     int64
	completed   int64
	failed      int64
	unmatched   int64
	cliMalf     int64
	bytesRead   int64
	bytesWrit   int64
	latency     obs.Hist

	// Server-side state.
	table     *ConnTable
	dispatchQ *sim.Chan[Request]
	respQ     *sim.Chan[Response]
	pendRead  []*sim.Chan[Request]
	pendWrite []*sim.Chan[Request]
	peakDisp  int
	srvMalf   int64
	rejected  int64
}

// New builds a serving tier with both sides on one kernel.
func New(k *sim.Kernel, cfg Config, spec workload.OpenLoopSpec, backend Backend) (*Tier, error) {
	return build(k, k, nil, nil, cfg, spec, backend)
}

// NewCross builds a serving tier whose client side lives on cliK and server
// side on srvK, in different shard domains connected by the toSrv/toCli
// edges (lookahead at least the wire latency). The two sides exchange only
// encoded frames, so the sharded run is byte-identical to the serial one.
func NewCross(cliK, srvK *sim.Kernel, toSrv, toCli *sim.Edge, cfg Config, spec workload.OpenLoopSpec, backend Backend) (*Tier, error) {
	if toSrv == nil || toCli == nil {
		return nil, fmt.Errorf("serve: cross-domain tier needs both edges")
	}
	return build(cliK, srvK, toSrv, toCli, cfg, spec, backend)
}

func build(cliK, srvK *sim.Kernel, toSrv, toCli *sim.Edge, cfg Config, spec workload.OpenLoopSpec, backend Backend) (*Tier, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	gen, err := workload.NewOpenLoop(spec)
	if err != nil {
		return nil, err
	}
	if backend == nil || backend.Lanes() < 1 {
		return nil, fmt.Errorf("serve: backend with at least one lane required")
	}
	if spec.Tenants > 1 && backend.Lanes() < spec.Tenants {
		return nil, fmt.Errorf("serve: %d tenants need %d backend lanes, have %d",
			spec.Tenants, spec.Tenants, backend.Lanes())
	}
	table, err := NewConnTable(spec.Clients)
	if err != nil {
		return nil, err
	}

	t := &Tier{
		cfg:         cfg,
		spec:        spec,
		backend:     backend,
		cliK:        cliK,
		srvK:        srvK,
		gen:         gen,
		outstanding: make(map[uint64]sim.Time),
		table:       table,
		dispatchQ:   sim.NewChan[Request](srvK, cfg.DispatchDepth),
		respQ:       sim.NewChan[Response](srvK, cfg.DispatchDepth),
	}
	t.cliMAC = ethernet.NewMAC(cliK, "serve.cli", cfg.Ethernet)
	t.srvMAC = ethernet.NewMAC(srvK, "serve.srv", cfg.Ethernet)
	if toSrv != nil {
		if err := ethernet.ConnectCross(t.cliMAC, t.srvMAC, toSrv, toCli); err != nil {
			return nil, err
		}
	} else {
		ethernet.Connect(t.cliMAC, t.srvMAC)
	}

	lanes := backend.Lanes()
	t.pendRead = make([]*sim.Chan[Request], lanes)
	t.pendWrite = make([]*sim.Chan[Request], lanes)
	for i := 0; i < lanes; i++ {
		t.pendRead[i] = sim.NewChan[Request](srvK, cfg.LaneWindow)
		t.pendWrite[i] = sim.NewChan[Request](srvK, cfg.LaneWindow)
		lane := i
		srvK.Spawn(fmt.Sprintf("serve.rdrain%d", lane), func(p *sim.Proc) {
			p.SetDaemon(true)
			t.drainLoop(p, lane, true)
		})
		srvK.Spawn(fmt.Sprintf("serve.wdrain%d", lane), func(p *sim.Proc) {
			p.SetDaemon(true)
			t.drainLoop(p, lane, false)
		})
	}
	srvK.Spawn("serve.rx", func(p *sim.Proc) {
		p.SetDaemon(true)
		t.serverRxLoop(p)
	})
	srvK.Spawn("serve.dispatch", func(p *sim.Proc) {
		p.SetDaemon(true)
		t.dispatchLoop(p)
	})
	srvK.Spawn("serve.resptx", func(p *sim.Proc) {
		p.SetDaemon(true)
		t.respTxLoop(p)
	})
	cliK.Spawn("serve.clirx", func(p *sim.Proc) {
		p.SetDaemon(true)
		t.clientRxLoop(p)
	})
	return t, nil
}

// Start schedules the open-loop sender at time at (which must not be in the
// client kernel's past). The arrival clock starts there: an arrival due at
// stream time d goes on the wire no earlier than at+d.
func (t *Tier) Start(at sim.Time) error {
	if t.started {
		return fmt.Errorf("serve: tier already started")
	}
	t.started = true
	t.startAt = at
	t.lastResp = at
	t.cliK.At(at, func() {
		t.cliK.Spawn("serve.sender", t.senderLoop)
	})
	return nil
}

// senderLoop is the open-loop client: it walks the arrival stream in due
// order, holds generated capsules in a bounded backlog while the link is
// busy or paused, and sheds oldest-first past the bound. It is the only
// non-daemon process in the tier; the simulation quiesces once it finishes
// and the in-flight frames drain.
func (t *Tier) senderLoop(p *sim.Proc) {
	for {
		a, ok := t.gen.Next()
		if !ok {
			break
		}
		due := t.startAt + a.Due
		if wait := due - p.Now(); wait > 0 {
			t.flush()
			for wait > 0 {
				// Wake at the retry tick while backlogged so pause
				// release is noticed promptly; sleep straight to the
				// due time otherwise.
				step := wait
				if len(t.pendq) > 0 && t.cfg.RetryTick < step {
					step = t.cfg.RetryTick
				}
				p.Sleep(step)
				t.flush()
				wait = due - p.Now()
			}
		}
		t.enqueue(a, due)
		t.flush()
	}
	// Drain the tail: everything still backlogged either goes out or is
	// shed by later arrivals — and no arrivals remain, so only the link
	// reopening empties it.
	for len(t.pendq) > 0 {
		if !t.flush() {
			p.Sleep(t.cfg.RetryTick)
		}
	}
}

// enqueue appends one arrival to the backlog, shedding the oldest entries
// once the backlog exceeds its bound.
func (t *Tier) enqueue(a workload.Arrival, due sim.Time) {
	req := Request{
		ID:     a.ID,
		Conn:   a.Conn,
		Tenant: a.Tenant,
		Op:     OpRead,
		Addr:   a.Addr,
		N:      a.N,
	}
	if !a.Read {
		req.Op = OpWrite
	}
	if a.Fin {
		req.Flags |= FlagFin
	}
	t.pendq = append(t.pendq, pending{req: req, due: due})
	for len(t.pendq) > t.cfg.ClientBacklog {
		t.pendq = t.pendq[1:]
		t.dropped++
	}
}

// flush coalesces backlogged capsules into frames and hands them to the
// MAC until it refuses (tx queue full — paused or line-saturated) or the
// backlog empties. It reports whether any frame was accepted.
func (t *Tier) flush() bool {
	progress := false
	for len(t.pendq) > 0 {
		n := len(t.pendq)
		if n > t.cfg.FrameBatch {
			n = t.cfg.FrameBatch
		}
		var f ethernet.Frame
		for _, pe := range t.pendq[:n] {
			f.Data = AppendRequest(f.Data, pe.req)
			f.Bytes += pe.req.WireBytes()
		}
		if !t.cliMAC.TrySend(f) {
			return progress
		}
		for _, pe := range t.pendq[:n] {
			t.outstanding[pe.req.ID] = pe.due
		}
		t.sent += int64(n)
		t.pendq = t.pendq[n:]
		progress = true
	}
	return progress
}

// clientRxLoop decodes response frames and closes the loop on latency:
// each response's latency is measured from its arrival's due time, so time
// spent backlogged behind a paused link counts against the tail.
func (t *Tier) clientRxLoop(p *sim.Proc) {
	for {
		f := t.cliMAC.Recv(p)
		b := f.Data
		for len(b) > 0 {
			resp, n, err := ParseResponse(b)
			if err != nil {
				t.cliMalf++
				break
			}
			b = b[n:]
			due, ok := t.outstanding[resp.ID]
			if !ok {
				t.unmatched++
				continue
			}
			delete(t.outstanding, resp.ID)
			if resp.Status != 0 {
				t.failed++
			} else {
				t.completed++
				if resp.Read {
					t.bytesRead += resp.N
				} else {
					t.bytesWrit += resp.N
				}
			}
			t.latency.Record(p.Now() - due)
			if p.Now() > t.lastResp {
				t.lastResp = p.Now()
			}
		}
	}
}

// serverRxLoop decodes request frames into the dispatch queue. The Put
// blocks when the queue is full; while this process is blocked it is not
// receiving, the MAC's rx FIFO fills, and the pause machinery throttles
// the client — the backpressure loop the tier exists to close.
func (t *Tier) serverRxLoop(p *sim.Proc) {
	for {
		f := t.srvMAC.Recv(p)
		b := f.Data
		for len(b) > 0 {
			req, n, err := ParseRequest(b)
			if err != nil {
				t.srvMalf++
				break
			}
			b = b[n:]
			if !t.table.Touch(req.Conn, req.Tenant, req.ID, int64(p.Now())) {
				t.rejected++
				continue
			}
			if req.Fin() {
				t.table.Close(req.Conn)
			}
			t.dispatchQ.Put(p, req)
			if d := t.dispatchQ.Len(); d > t.peakDisp {
				t.peakDisp = d
			}
		}
	}
}

// dispatchLoop batches queued requests into the backend, up to
// DispatchBatch per wakeup. The bounded per-lane pend channels block it
// when the backend falls behind, which is what lets the dispatch queue
// fill and trip the pause thresholds upstream.
func (t *Tier) dispatchLoop(p *sim.Proc) {
	for {
		req := t.dispatchQ.Get(p)
		for issued := 0; ; issued++ {
			lane := 0
			if t.backend.Lanes() > 1 {
				lane = int(req.Tenant)
			}
			if req.Op == OpRead {
				t.backend.ReadAsync(p, lane, req.Addr, req.N)
				t.pendRead[lane].Put(p, req)
			} else {
				t.backend.WriteAsync(p, lane, req.Addr, req.N)
				t.pendWrite[lane].Put(p, req)
			}
			if issued+1 >= t.cfg.DispatchBatch {
				break
			}
			var ok bool
			req, ok = t.dispatchQ.TryGet()
			if !ok {
				break
			}
		}
	}
}

// drainLoop pairs one lane-direction's completions with the requests that
// issued them (the backend contract is in-order per lane and direction)
// and queues the responses for transmission.
func (t *Tier) drainLoop(p *sim.Proc, lane int, read bool) {
	pend := t.pendWrite[lane]
	if read {
		pend = t.pendRead[lane]
	}
	for {
		req := pend.Get(p)
		var err error
		if read {
			err = t.backend.ConsumeRead(p, lane)
		} else {
			err = t.backend.WaitWrite(p, lane)
		}
		t.table.Done(req.Conn)
		resp := Response{
			ID:     req.ID,
			Conn:   req.Conn,
			Tenant: req.Tenant,
			N:      req.N,
			Read:   read,
		}
		if err != nil {
			resp.Status = 1
			resp.N = 0
		}
		t.respQ.Put(p, resp)
	}
}

// respTxLoop coalesces completed responses into frames headed back to the
// client. Send blocks on a full tx queue — the response path is allowed to
// backpressure the drains.
func (t *Tier) respTxLoop(p *sim.Proc) {
	for {
		resp := t.respQ.Get(p)
		var f ethernet.Frame
		for n := 0; ; n++ {
			f.Data = AppendResponse(f.Data, resp)
			f.Bytes += resp.WireBytes()
			if n+1 >= t.cfg.FrameBatch {
				break
			}
			var ok bool
			resp, ok = t.respQ.TryGet()
			if !ok {
				break
			}
		}
		t.srvMAC.Send(p, f)
	}
}

// Report is the tier's result summary. It contains no slices or pointers,
// so two runs' reports compare with == — the kernel-worker identity tests
// rely on that.
type Report struct {
	// Clients is the simulated client population.
	Clients int
	// Generated counts arrivals produced by the open-loop engine; Sent
	// the capsules that made it onto the wire; Dropped the arrivals shed
	// from the backlog while the link was paused.
	Generated, Sent, Dropped int64
	// Completed / Failed / Unmatched partition the responses received.
	Completed, Failed, Unmatched int64
	// Malformed counts undecodable capsules (client + server side);
	// Rejected counts requests with out-of-range connection ids.
	Malformed, Rejected int64
	// BytesRead / BytesWritten are goodput payload bytes.
	BytesRead, BytesWritten int64
	// Elapsed spans tier start to the last response.
	Elapsed sim.Time
	// Latency is the due-to-response distribution (backlog time counts).
	Latency obs.Hist
	// PeakDispatch / DispatchCap report the dispatch-queue high-water
	// mark against its bound.
	PeakDispatch, DispatchCap int
	// PeakConns / ConnCapacity / ConnStateBytes report the connection
	// table: highest concurrent occupancy, addressable clients, and the
	// table's memory footprint.
	PeakConns, ConnCapacity int
	ConnStateBytes          int64
	// Opens / Closes count connection-table transitions.
	Opens, Closes uint64
	// PausesSent / PausesHonored / FramesDropped surface the 802.3x
	// flow-control activity on the server's MAC pair.
	PausesSent, PausesHonored int64
	FramesDropped             int64
}

// GoodputMBps is payload megabytes per wall-second completed end-to-end.
func (r Report) GoodputMBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.BytesRead+r.BytesWritten) / r.Elapsed.Seconds() / 1e6
}

// Report summarizes the run; call it after the simulation quiesces.
func (t *Tier) Report() Report {
	return Report{
		Clients:        t.spec.Clients,
		Generated:      t.gen.Generated(),
		Sent:           t.sent,
		Dropped:        t.dropped,
		Completed:      t.completed,
		Failed:         t.failed,
		Unmatched:      t.unmatched,
		Malformed:      t.cliMalf + t.srvMalf,
		Rejected:       t.rejected,
		BytesRead:      t.bytesRead,
		BytesWritten:   t.bytesWrit,
		Elapsed:        t.lastResp - t.startAt,
		Latency:        t.latency,
		PeakDispatch:   t.peakDisp,
		DispatchCap:    t.cfg.DispatchDepth,
		PeakConns:      t.table.Peak(),
		ConnCapacity:   t.table.Capacity(),
		ConnStateBytes: t.table.StateBytes(),
		Opens:          t.table.Opens(),
		Closes:         t.table.Closes(),
		PausesSent:     t.srvMAC.PausesSent(),
		PausesHonored:  t.cliMAC.PausesHonored(),
		FramesDropped:  t.cliMAC.FramesDropped() + t.srvMAC.FramesDropped(),
	}
}

package serve

import (
	"testing"

	"snacc/internal/ethernet"
	"snacc/internal/sim"
	"snacc/internal/workload"
)

// stubBackend is a fixed-latency storage model: completions return in
// issue order per lane and direction (the Backend contract) after a
// configurable service delay, so tests dial the backend anywhere from
// instant to pathologically slow without standing up the full streamer
// stack.
type stubBackend struct {
	lanes int
	delay sim.Time
}

func (b stubBackend) Lanes() int                               { return b.lanes }
func (b stubBackend) ReadAsync(*sim.Proc, int, uint64, int64)  {}
func (b stubBackend) WriteAsync(*sim.Proc, int, uint64, int64) {}
func (b stubBackend) ConsumeRead(p *sim.Proc, _ int) error     { p.Sleep(b.delay); return nil }
func (b stubBackend) WaitWrite(p *sim.Proc, _ int) error       { p.Sleep(b.delay); return nil }

func fastSpec(ops int64) workload.OpenLoopSpec {
	return workload.OpenLoopSpec{
		Clients:      64,
		RatePerSec:   2e6,
		Ops:          ops,
		ReadFraction: 0.5,
		IOBytes:      4096,
		SpanBytes:    16 * sim.MiB,
		ZipfTheta:    0.9,
		ZipfBuckets:  16,
		CloseProb:    0.1,
		Seed:         7,
	}
}

// runSerial builds and runs a single-kernel tier to quiescence.
func runSerial(t *testing.T, cfg Config, spec workload.OpenLoopSpec, b Backend) Report {
	t.Helper()
	k := sim.NewKernel()
	tier, err := New(k, cfg, spec, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := tier.Start(0); err != nil {
		t.Fatal(err)
	}
	k.Run(0)
	return tier.Report()
}

// runCross builds and runs the tier across two shard domains.
func runCross(t *testing.T, workers int, cfg Config, spec workload.OpenLoopSpec, b Backend) Report {
	t.Helper()
	shard := sim.NewShard(workers)
	cli := shard.AddDomain("clients")
	srv := shard.AddDomain("server")
	look := ethernet.DefaultConfig().EdgeLookahead()
	toSrv := shard.MustConnect(cli, srv, look)
	toCli := shard.MustConnect(srv, cli, look)
	tier, err := NewCross(cli.Kernel(), srv.Kernel(), toSrv, toCli, cfg, spec, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := tier.Start(0); err != nil {
		t.Fatal(err)
	}
	shard.Run(0)
	return tier.Report()
}

// checkConservation asserts the request-accounting invariants every run
// must satisfy once quiescent: every arrival was sent or shed, and every
// sent capsule came back exactly once.
func checkConservation(t *testing.T, r Report) {
	t.Helper()
	if r.Generated != r.Sent+r.Dropped {
		t.Fatalf("conservation: generated %d != sent %d + dropped %d", r.Generated, r.Sent, r.Dropped)
	}
	if r.Sent != r.Completed+r.Failed+r.Unmatched {
		t.Fatalf("conservation: sent %d != completed %d + failed %d + unmatched %d",
			r.Sent, r.Completed, r.Failed, r.Unmatched)
	}
	if r.Malformed != 0 || r.Rejected != 0 || r.Unmatched != 0 {
		t.Fatalf("clean run saw malformed=%d rejected=%d unmatched=%d", r.Malformed, r.Rejected, r.Unmatched)
	}
}

func TestTierEndToEnd(t *testing.T) {
	r := runSerial(t, Config{}, fastSpec(400), stubBackend{lanes: 1, delay: sim.Microsecond})
	checkConservation(t, r)
	if r.Generated != 400 {
		t.Fatalf("generated %d, want 400", r.Generated)
	}
	if r.Dropped != 0 {
		t.Fatalf("fast backend shed %d arrivals", r.Dropped)
	}
	if r.Completed != 400 {
		t.Fatalf("completed %d, want 400", r.Completed)
	}
	if r.Latency.Count() != 400 {
		t.Fatalf("latency samples %d, want 400", r.Latency.Count())
	}
	if r.BytesRead == 0 || r.BytesWritten == 0 {
		t.Fatalf("goodput bytes read=%d written=%d, want both positive", r.BytesRead, r.BytesWritten)
	}
	if r.BytesRead+r.BytesWritten != 400*4096 {
		t.Fatalf("goodput %d bytes, want %d", r.BytesRead+r.BytesWritten, 400*4096)
	}
	if r.GoodputMBps() <= 0 {
		t.Fatalf("goodput rate %.1f", r.GoodputMBps())
	}
	if r.PeakConns == 0 || r.PeakConns > 64 {
		t.Fatalf("peak conns %d outside (0, 64]", r.PeakConns)
	}
	if r.Opens == 0 || r.Closes == 0 {
		t.Fatalf("churn: opens=%d closes=%d, want both positive", r.Opens, r.Closes)
	}
	if r.ConnStateBytes <= 0 {
		t.Fatalf("conn state bytes %d", r.ConnStateBytes)
	}
	if r.Elapsed <= 0 {
		t.Fatalf("elapsed %v", r.Elapsed)
	}
}

// TestBackpressureBounds is the tier's load-shedding invariant: with a
// backend orders of magnitude slower than the arrival rate, the dispatch
// queue and the connection table stay under their configured bounds, pause
// frames actually fire, and the overload is shed at the open-loop client —
// counted as drops — instead of buffered without limit. Runs under -race
// via the Makefile's race target.
func TestBackpressureBounds(t *testing.T) {
	spec := workload.OpenLoopSpec{
		Clients:      256,
		RatePerSec:   1e8, // ~10 ns between arrivals: hopeless overload
		Ops:          4000,
		ReadFraction: 0.5,
		IOBytes:      512,
		SpanBytes:    16 * sim.MiB,
		ZipfTheta:    0.9,
		ZipfBuckets:  16,
		Seed:         11,
	}
	ecfg := ethernet.DefaultConfig()
	ecfg.RxFIFOBytes = 64 * sim.KiB
	cfg := Config{
		DispatchDepth: 32,
		DispatchBatch: 8,
		FrameBatch:    1, // one capsule per frame, so the tx queue meters capsules
		ClientBacklog: 128,
		LaneWindow:    4,
		Ethernet:      ecfg,
	}
	slow := stubBackend{lanes: 1, delay: 100 * sim.Microsecond}

	for _, tc := range []struct {
		name string
		run  func() Report
	}{
		{"serial", func() Report { return runSerial(t, cfg, spec, slow) }},
		{"sharded", func() Report { return runCross(t, 2, cfg, spec, slow) }},
	} {
		r := tc.run()
		if r.Generated != r.Sent+r.Dropped {
			t.Fatalf("%s: conservation: generated %d != sent %d + dropped %d",
				tc.name, r.Generated, r.Sent, r.Dropped)
		}
		if r.Sent != r.Completed+r.Failed+r.Unmatched {
			t.Fatalf("%s: conservation: sent %d != completed %d + failed %d + unmatched %d",
				tc.name, r.Sent, r.Completed, r.Failed, r.Unmatched)
		}
		if r.PeakDispatch > r.DispatchCap {
			t.Fatalf("%s: dispatch queue peaked at %d, bound %d", tc.name, r.PeakDispatch, r.DispatchCap)
		}
		if r.PeakConns > r.ConnCapacity {
			t.Fatalf("%s: connection table peaked at %d, capacity %d", tc.name, r.PeakConns, r.ConnCapacity)
		}
		if r.PausesSent == 0 {
			t.Fatalf("%s: overload never tripped a pause frame", tc.name)
		}
		if r.PausesHonored == 0 {
			t.Fatalf("%s: client never honored a pause", tc.name)
		}
		if r.Dropped == 0 {
			t.Fatalf("%s: overload shed nothing — backlog must have grown unboundedly", tc.name)
		}
		if r.FramesDropped != 0 {
			t.Fatalf("%s: %d frames dropped in the MACs — shedding must happen above the link", tc.name, r.FramesDropped)
		}
	}
}

// TestTierShardIdentity pins the determinism contract: the same spec run
// serially and across shard domains at several worker counts yields
// bit-identical reports (Report is comparable, so == covers every field
// including the latency histogram).
func TestTierShardIdentity(t *testing.T) {
	spec := fastSpec(300)
	b := stubBackend{lanes: 1, delay: 2 * sim.Microsecond}
	serial := runSerial(t, Config{}, spec, b)
	checkConservation(t, serial)
	for _, w := range []int{1, 2, 4} {
		cross := runCross(t, w, Config{}, spec, b)
		if cross != serial {
			t.Fatalf("workers=%d report diverged:\nserial: %+v\ncross:  %+v", w, serial, cross)
		}
	}
	again := runSerial(t, Config{}, spec, b)
	if again != serial {
		t.Fatalf("repeat serial run diverged:\n%+v\n%+v", serial, again)
	}
}

// TestTierTenantLanes routes a multi-tenant spec across a lane-per-tenant
// backend.
func TestTierTenantLanes(t *testing.T) {
	spec := fastSpec(300)
	spec.Tenants = 4
	r := runSerial(t, Config{}, spec, stubBackend{lanes: 4, delay: sim.Microsecond})
	checkConservation(t, r)
	if r.Completed != 300 {
		t.Fatalf("completed %d, want 300", r.Completed)
	}
}

func TestTierConfigErrors(t *testing.T) {
	k := sim.NewKernel()
	good := fastSpec(10)
	b := stubBackend{lanes: 1, delay: 0}

	if _, err := New(k, Config{}, good, nil); err == nil {
		t.Fatal("nil backend accepted")
	}
	multi := good
	multi.Tenants = 4
	if _, err := New(k, Config{}, multi, b); err == nil {
		t.Fatal("4 tenants over a 1-lane backend accepted")
	}
	bad := good
	bad.Clients = 0
	if _, err := New(k, Config{}, bad, b); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if _, err := New(k, Config{DispatchBatch: 99, DispatchDepth: 8}, good, b); err == nil {
		t.Fatal("batch > depth accepted")
	}
	if _, err := New(k, Config{DispatchDepth: -1}, good, b); err == nil {
		t.Fatal("negative depth accepted")
	}
	if _, err := NewCross(k, k, nil, nil, Config{}, good, b); err == nil {
		t.Fatal("cross tier without edges accepted")
	}

	tier, err := New(k, Config{}, good, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := tier.Start(0); err != nil {
		t.Fatal(err)
	}
	if err := tier.Start(0); err == nil {
		t.Fatal("double Start accepted")
	}
	k.Run(0)
}

package serve

import (
	"fmt"
	"math"
	"unsafe"
)

// connSlot is one open connection's state. The table is an array of these —
// not a map of pointers — so the per-connection footprint is a fixed,
// reportable 32 bytes and a million connections cost exactly 32 MiB of slot
// memory plus the 4-byte client index. TestConnSlotSize pins the size.
type connSlot struct {
	client uint32
	tenant uint16
	flags  uint16
	// inflight counts requests dispatched but not yet answered.
	inflight uint32
	// reqs counts requests accepted over the connection's lifetime.
	reqs uint32
	// lastID is the most recent request id, for duplicate diagnostics.
	lastID uint64
	// lastActive is the last Touch time in kernel ticks.
	lastActive int64
}

// connSlotBytes is the asserted per-connection state footprint.
const connSlotBytes = 32

// ConnTable tracks open connections for up to a configured client
// population. Slots live in one flat array recycled through a free-list
// stack; a client-indexed int32 array maps client ids to slots (-1 =
// closed). The slot array grows only to the peak concurrent occupancy, so a
// million-client population that keeps 40k connections open at once pays
// for 40k slots, and StateBytes reports the real footprint either way.
type ConnTable struct {
	slots    []connSlot
	byClient []int32
	free     []int32
	open     int
	peak     int
	opens    uint64
	closes   uint64
}

// NewConnTable builds a table for client ids in [0, clients).
func NewConnTable(clients int) (*ConnTable, error) {
	if clients < 1 || clients > math.MaxInt32 {
		return nil, fmt.Errorf("serve: connection table needs 1..%d clients, got %d", math.MaxInt32, clients)
	}
	t := &ConnTable{byClient: make([]int32, clients)}
	for i := range t.byClient {
		t.byClient[i] = -1
	}
	return t, nil
}

// Capacity is the client population the table can address.
func (t *ConnTable) Capacity() int { return len(t.byClient) }

// Touch records a request on the client's connection, opening it first if
// closed, and reports false when the client id is out of range.
func (t *ConnTable) Touch(client uint32, tenant uint16, id uint64, now int64) bool {
	if int(client) >= len(t.byClient) {
		return false
	}
	idx := t.byClient[client]
	if idx < 0 {
		if n := len(t.free); n > 0 {
			idx = t.free[n-1]
			t.free = t.free[:n-1]
		} else {
			idx = int32(len(t.slots))
			t.slots = append(t.slots, connSlot{})
		}
		t.slots[idx] = connSlot{client: client}
		t.byClient[client] = idx
		t.open++
		t.opens++
		if t.open > t.peak {
			t.peak = t.open
		}
	}
	s := &t.slots[idx]
	s.tenant = tenant
	s.inflight++
	s.reqs++
	s.lastID = id
	s.lastActive = now
	return true
}

// Done retires one in-flight request on the client's connection.
func (t *ConnTable) Done(client uint32) {
	if int(client) >= len(t.byClient) {
		return
	}
	if idx := t.byClient[client]; idx >= 0 && t.slots[idx].inflight > 0 {
		t.slots[idx].inflight--
	}
}

// Close releases the client's connection back to the free list, reporting
// whether it was open.
func (t *ConnTable) Close(client uint32) bool {
	if int(client) >= len(t.byClient) {
		return false
	}
	idx := t.byClient[client]
	if idx < 0 {
		return false
	}
	t.byClient[client] = -1
	t.free = append(t.free, idx)
	t.open--
	t.closes++
	return true
}

// Occupancy is the number of currently open connections.
func (t *ConnTable) Occupancy() int { return t.open }

// Peak is the highest concurrent occupancy seen.
func (t *ConnTable) Peak() int { return t.peak }

// Opens and Closes count lifetime connection transitions.
func (t *ConnTable) Opens() uint64 { return t.opens }

// Closes counts lifetime connection closes.
func (t *ConnTable) Closes() uint64 { return t.closes }

// StateBytes is the table's connection-state footprint: slot storage plus
// the client index and free stack.
func (t *ConnTable) StateBytes() int64 {
	return int64(cap(t.slots))*int64(unsafe.Sizeof(connSlot{})) +
		int64(cap(t.byClient))*4 + int64(cap(t.free))*4
}

package serve

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	cases := []Request{
		{ID: 1, Conn: 7, Tenant: 0, Op: OpRead, Addr: 4096, N: 4096},
		{ID: 1<<64 - 1, Conn: 999_999, Tenant: 3, Op: OpWrite, Addr: 512, N: 512, Flags: FlagFin},
		{ID: 42, Conn: 0, Op: OpWrite, Addr: 0, N: 1024, Payload: bytes.Repeat([]byte{0xab}, 1024)},
	}
	for _, want := range cases {
		b := AppendRequest(nil, want)
		got, n, err := ParseRequest(b)
		if err != nil {
			t.Fatalf("ParseRequest(%+v): %v", want, err)
		}
		if n != len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		if got.ID != want.ID || got.Conn != want.Conn || got.Tenant != want.Tenant ||
			got.Op != want.Op || got.Addr != want.Addr || got.N != want.N || got.Flags != want.Flags {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
		if !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("payload mismatch: %d vs %d bytes", len(got.Payload), len(want.Payload))
		}
		if want.Fin() != (want.Flags&FlagFin != 0) {
			t.Fatalf("Fin() disagrees with flags")
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []Response{
		{ID: 9, Conn: 3, Tenant: 1, Status: 0, N: 4096, Read: true},
		{ID: 10, Conn: 4, Status: 1, N: 0},
		{ID: 11, Conn: 5, Status: 0x7fff, N: 512, Read: false},
		{ID: 12, Conn: 6, N: 512, Read: true, Payload: bytes.Repeat([]byte{1}, 512)},
	}
	for _, want := range cases {
		b := AppendResponse(nil, want)
		got, n, err := ParseResponse(b)
		if err != nil {
			t.Fatalf("ParseResponse(%+v): %v", want, err)
		}
		if n != len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		if got.ID != want.ID || got.Conn != want.Conn || got.Tenant != want.Tenant ||
			got.Status != want.Status || got.N != want.N || got.Read != want.Read {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
		if !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("payload mismatch")
		}
	}
}

func TestRequestStreamDecode(t *testing.T) {
	var b []byte
	want := []Request{
		{ID: 1, Conn: 1, Op: OpRead, Addr: 0, N: 512},
		{ID: 2, Conn: 2, Op: OpWrite, Addr: 512, N: 4096},
		{ID: 3, Conn: 3, Op: OpRead, Addr: 1024, N: 512, Flags: FlagFin},
	}
	for _, r := range want {
		b = AppendRequest(b, r)
	}
	var got []Request
	for len(b) > 0 {
		r, n, err := ParseRequest(b)
		if err != nil {
			t.Fatalf("stream decode: %v", err)
		}
		got = append(got, r)
		b = b[n:]
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d of %d capsules", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("capsule %d: id %d want %d", i, got[i].ID, want[i].ID)
		}
	}
}

// corruptRequest returns a valid encoded request with one mutation applied.
func corruptRequest(mut func(b []byte)) []byte {
	b := AppendRequest(nil, Request{ID: 5, Conn: 1, Op: OpRead, Addr: 512, N: 512})
	mut(b)
	return b
}

func TestParseRequestErrors(t *testing.T) {
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short prologue", []byte{0x52, 0x53, 1}, ErrTruncated},
		{"truncated body", corruptRequest(func(b []byte) {})[:RequestHeaderBytes-4], ErrTruncated},
		{"bad magic", corruptRequest(func(b []byte) { b[0] = 0xff }), ErrMagic},
		{"bad version", corruptRequest(func(b []byte) { b[2] = 9 }), ErrVersion},
		{"bad op", corruptRequest(func(b []byte) { b[3] = 77 }), ErrOp},
		{"response op in request stream", corruptRequest(func(b []byte) { b[3] = byte(opResponse) }), ErrOp},
		{"length below header", corruptRequest(func(b []byte) {
			binary.LittleEndian.PutUint32(b[4:], RequestHeaderBytes-1)
		}), ErrLength},
		{"length overflow", corruptRequest(func(b []byte) {
			binary.LittleEndian.PutUint32(b[4:], 0xffff_ffff)
		}), ErrLength},
		{"oversized", corruptRequest(func(b []byte) {
			binary.LittleEndian.PutUint32(b[4:], RequestHeaderBytes+MaxTransferBytes+1)
		}), ErrLength},
		{"zero transfer", corruptRequest(func(b []byte) {
			binary.LittleEndian.PutUint64(b[32:], 0)
		}), ErrTransfer},
		{"unaligned transfer", corruptRequest(func(b []byte) {
			binary.LittleEndian.PutUint64(b[32:], 513)
		}), ErrTransfer},
		{"unaligned addr", corruptRequest(func(b []byte) {
			binary.LittleEndian.PutUint64(b[24:], 7)
		}), ErrTransfer},
		{"giant transfer", corruptRequest(func(b []byte) {
			binary.LittleEndian.PutUint64(b[32:], MaxTransferBytes+512)
		}), ErrTransfer},
		{"payload mismatch", append(corruptRequest(func(b []byte) {
			binary.LittleEndian.PutUint32(b[4:], RequestHeaderBytes+8)
		}), make([]byte, 8)...), ErrLength},
	}
	for _, tc := range cases {
		_, n, err := ParseRequest(tc.in)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
		if n != 0 {
			t.Errorf("%s: consumed %d bytes on error", tc.name, n)
		}
	}
}

func TestParseResponseErrors(t *testing.T) {
	valid := AppendResponse(nil, Response{ID: 5, Conn: 1, N: 512, Read: true})
	header := valid[:ResponseHeaderBytes]

	badOp := append([]byte(nil), header...)
	badOp[3] = byte(OpRead)
	overflowN := append([]byte(nil), header...)
	binary.LittleEndian.PutUint64(overflowN[24:], MaxTransferBytes+512)
	badPayload := append([]byte(nil), header...)
	binary.LittleEndian.PutUint32(badPayload[4:], ResponseHeaderBytes+8)
	badPayload = append(badPayload, make([]byte, 8)...)

	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"truncated payload", valid[:len(valid)-1], ErrTruncated},
		{"request op in response stream", badOp, ErrOp},
		{"overflow n", overflowN, ErrTransfer},
		{"payload mismatch", badPayload, ErrLength},
	}
	for _, tc := range cases {
		_, n, err := ParseResponse(tc.in)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
		if n != 0 {
			t.Errorf("%s: consumed %d bytes on error", tc.name, n)
		}
	}
}

func TestWireBytes(t *testing.T) {
	read := Request{Op: OpRead, N: 4096}
	if got := read.WireBytes(); got != RequestHeaderBytes {
		t.Fatalf("read request wire bytes %d, want header only", got)
	}
	write := Request{Op: OpWrite, N: 4096}
	if got := write.WireBytes(); got != RequestHeaderBytes+4096 {
		t.Fatalf("write request wire bytes %d, want header+payload", got)
	}
	rresp := Response{Read: true, N: 4096}
	if got := rresp.WireBytes(); got != ResponseHeaderBytes+4096 {
		t.Fatalf("read response wire bytes %d, want header+payload", got)
	}
	wresp := Response{N: 4096}
	if got := wresp.WireBytes(); got != ResponseHeaderBytes {
		t.Fatalf("write response wire bytes %d, want header only", got)
	}
}

func TestOpString(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" {
		t.Fatalf("op names: %s/%s", OpRead, OpWrite)
	}
	if !strings.Contains(Op(9).String(), "9") {
		t.Fatalf("unknown op string: %s", Op(9))
	}
}

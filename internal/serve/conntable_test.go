package serve

import (
	"testing"
	"unsafe"
)

// TestConnSlotSize pins the reportable per-connection footprint: the whole
// point of the array-backed table is that a million connections cost an
// auditable 32 bytes each.
func TestConnSlotSize(t *testing.T) {
	if got := unsafe.Sizeof(connSlot{}); got != connSlotBytes {
		t.Fatalf("connSlot is %d bytes, want %d", got, connSlotBytes)
	}
}

func TestConnTableLifecycle(t *testing.T) {
	tab, err := NewConnTable(8)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Capacity() != 8 {
		t.Fatalf("capacity %d, want 8", tab.Capacity())
	}
	// Opening three clients allocates three slots.
	for _, c := range []uint32{0, 3, 7} {
		if !tab.Touch(c, 0, uint64(c), 100) {
			t.Fatalf("Touch(%d) rejected", c)
		}
	}
	if tab.Occupancy() != 3 || tab.Peak() != 3 || tab.Opens() != 3 {
		t.Fatalf("occupancy=%d peak=%d opens=%d, want 3/3/3", tab.Occupancy(), tab.Peak(), tab.Opens())
	}
	// Re-touching an open client does not reopen it.
	tab.Touch(3, 1, 99, 200)
	if tab.Opens() != 3 || tab.Occupancy() != 3 {
		t.Fatalf("re-touch changed opens=%d occupancy=%d", tab.Opens(), tab.Occupancy())
	}
	// Close releases the slot; a later open reuses it off the free list.
	if !tab.Close(3) {
		t.Fatal("Close(3) reported not open")
	}
	if tab.Close(3) {
		t.Fatal("double Close(3) reported open")
	}
	if tab.Occupancy() != 2 || tab.Closes() != 1 {
		t.Fatalf("after close: occupancy=%d closes=%d", tab.Occupancy(), tab.Closes())
	}
	slotsBefore := len(tab.slots)
	tab.Touch(5, 0, 1, 300)
	if len(tab.slots) != slotsBefore {
		t.Fatalf("free-list reopen grew the slot array %d -> %d", slotsBefore, len(tab.slots))
	}
	if tab.Peak() != 3 {
		t.Fatalf("peak %d, want 3", tab.Peak())
	}
}

func TestConnTableInflight(t *testing.T) {
	tab, err := NewConnTable(4)
	if err != nil {
		t.Fatal(err)
	}
	tab.Touch(2, 0, 1, 0)
	tab.Touch(2, 0, 2, 0)
	if got := tab.slots[tab.byClient[2]].inflight; got != 2 {
		t.Fatalf("inflight %d, want 2", got)
	}
	tab.Done(2)
	if got := tab.slots[tab.byClient[2]].inflight; got != 1 {
		t.Fatalf("inflight after Done %d, want 1", got)
	}
	// Done after close (the FIN-while-inflight case) is a no-op.
	tab.Close(2)
	tab.Done(2)
	// Out-of-range ids are rejected or ignored, never a panic.
	if tab.Touch(99, 0, 1, 0) {
		t.Fatal("Touch out of range accepted")
	}
	tab.Done(99)
	if tab.Close(99) {
		t.Fatal("Close out of range reported open")
	}
}

func TestConnTableStateBytes(t *testing.T) {
	tab, err := NewConnTable(1000)
	if err != nil {
		t.Fatal(err)
	}
	base := tab.StateBytes()
	if base < 4000 {
		t.Fatalf("state bytes %d below the client index alone", base)
	}
	for c := uint32(0); c < 100; c++ {
		tab.Touch(c, 0, 1, 0)
	}
	grown := tab.StateBytes()
	if grown < base+100*connSlotBytes {
		t.Fatalf("state bytes %d after 100 opens, want >= %d", grown, base+100*connSlotBytes)
	}
}

func TestNewConnTableRejects(t *testing.T) {
	if _, err := NewConnTable(0); err == nil {
		t.Fatal("NewConnTable(0) accepted")
	}
	if _, err := NewConnTable(-5); err == nil {
		t.Fatal("NewConnTable(-5) accepted")
	}
}

package pcie

import (
	"fmt"
	"sort"
)

// IOMMU validates device-initiated DMA against explicitly granted windows,
// modeling the permission setup SNAcc requires before FPGA↔NVMe peer-to-peer
// traffic works (§4). Windows are granted per initiator name.
type IOMMU struct {
	enabled bool
	// grants maps initiator name to its sorted allow-list.
	grants map[string][]window
}

type window struct {
	base uint64
	size int64
}

// FaultError reports a rejected DMA.
type FaultError struct {
	Initiator string
	Addr      uint64
	Len       int64
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("iommu: %s denied access to [%#x,+%#x)", e.Initiator, e.Addr, e.Len)
}

// NewIOMMU creates an IOMMU; when disabled, Check always passes.
func NewIOMMU(enabled bool) *IOMMU {
	return &IOMMU{enabled: enabled, grants: make(map[string][]window)}
}

// Enabled reports whether checks are active.
func (m *IOMMU) Enabled() bool { return m.enabled }

// SetEnabled toggles enforcement (the paper disables the IOMMU in one
// experiment to rule it out as the P2P bottleneck).
func (m *IOMMU) SetEnabled(v bool) { m.enabled = v }

// Grant allows initiator to access [base, base+size).
func (m *IOMMU) Grant(initiator string, base uint64, size int64) {
	if size <= 0 {
		panic("pcie: IOMMU grant with non-positive size")
	}
	ws := append(m.grants[initiator], window{base: base, size: size})
	sort.Slice(ws, func(i, j int) bool { return ws[i].base < ws[j].base })
	m.grants[initiator] = ws
}

// Revoke removes every grant for initiator.
func (m *IOMMU) Revoke(initiator string) { delete(m.grants, initiator) }

// Check validates an access of n bytes at addr by initiator. The access
// must fall entirely inside a single granted window.
func (m *IOMMU) Check(initiator string, addr uint64, n int64) error {
	if !m.enabled {
		return nil
	}
	for _, w := range m.grants[initiator] {
		if addr >= w.base && addr+uint64(n) <= w.base+uint64(w.size) {
			return nil
		}
	}
	return &FaultError{Initiator: initiator, Addr: addr, Len: n}
}

package pcie

import (
	"strings"
	"testing"

	"snacc/internal/sim"
)

// testFabric builds a host + device + SSD-like topology used across tests.
func testFabric(t *testing.T, cfg Config) (*sim.Kernel, *Fabric, *Port, *Port, *MemCompleter, *MemCompleter) {
	t.Helper()
	k := sim.NewKernel()
	f := NewFabric(k, cfg)
	hostMem := NewMemCompleter(k, 50e9, 90*sim.Nanosecond)
	devMem := NewMemCompleter(k, 30e9, 200*sim.Nanosecond)
	host := f.AttachHostPort("host", LinkConfig{Gen: Gen4, Lanes: 16}, hostMem)
	dev := f.AttachPort("dev", LinkConfig{Gen: Gen3, Lanes: 16}, devMem)
	f.MapRange(host, 0x0000_0000, 1<<30)     // host DRAM at 0
	f.MapRange(dev, 0x10_0000_0000, 256<<20) // device BAR
	f.IOMMU().Grant("dev", 0, 1<<30)
	f.IOMMU().Grant("host", 0x10_0000_0000, 256<<20) // host is exempt anyway
	return k, f, host, dev, hostMem, devMem
}

func TestLinkBandwidth(t *testing.T) {
	cases := []struct {
		lc   LinkConfig
		want float64
	}{
		{LinkConfig{Gen: Gen3, Lanes: 16}, 15.76e9},
		{LinkConfig{Gen: Gen4, Lanes: 4}, 7.876e9},
		{LinkConfig{Gen: Gen5, Lanes: 4}, 15.752e9},
	}
	for _, c := range cases {
		got := c.lc.BytesPerSec()
		if got < c.want*0.99 || got > c.want*1.01 {
			t.Errorf("BytesPerSec(gen%d x%d) = %.3g, want ~%.3g", c.lc.Gen, c.lc.Lanes, got, c.want)
		}
	}
}

func TestRouting(t *testing.T) {
	_, f, host, dev, _, _ := testFabric(t, DefaultConfig())
	if got := f.Route(0x100); got != host {
		t.Errorf("Route(0x100) = %v, want host", got)
	}
	if got := f.Route(0x10_0000_0000); got != dev {
		t.Errorf("Route(BAR base) = %v, want dev", got)
	}
	if got := f.Route(0x10_1000_0000); got != nil {
		t.Errorf("Route(past BAR) = %v, want nil", got)
	}
}

func TestMapRangeOverlapPanics(t *testing.T) {
	_, f, host, _, _, _ := testFabric(t, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("overlapping MapRange did not panic")
		}
	}()
	f.MapRange(host, 1<<29, 1<<30)
}

func TestPostedWriteDelivery(t *testing.T) {
	k, _, _, dev, hostMem, _ := testFabric(t, DefaultConfig())
	var doneAt sim.Time
	k.Spawn("writer", func(p *sim.Proc) {
		dev.WriteB(p, 0x1000, 4096, nil)
		doneAt = p.Now()
	})
	k.Run(0)
	if doneAt == 0 {
		t.Fatal("write never completed")
	}
	if hostMem.Writes() != 1 {
		t.Fatalf("host memory saw %d writes, want 1", hostMem.Writes())
	}
	if dev.PayloadTx() != 4096 {
		t.Fatalf("PayloadTx = %d, want 4096", dev.PayloadTx())
	}
}

func TestReadRoundTrip(t *testing.T) {
	k, _, _, dev, hostMem, _ := testFabric(t, DefaultConfig())
	var doneAt sim.Time
	k.Spawn("reader", func(p *sim.Proc) {
		dev.ReadB(p, 0x2000, 4096, nil)
		doneAt = p.Now()
	})
	k.Run(0)
	// 4096 B in 512 B requests = 8 round trips (pipelined); must take at
	// least one full RTT and deliver all payload.
	if doneAt < 500*sim.Nanosecond {
		t.Fatalf("read completed implausibly fast: %v", doneAt)
	}
	if dev.PayloadRx() != 4096 {
		t.Fatalf("PayloadRx = %d, want 4096", dev.PayloadRx())
	}
	if hostMem.Reads() != 8 {
		t.Fatalf("host memory served %d reads, want 8 (512B chunks)", hostMem.Reads())
	}
}

// Posted writes must stream at link rate regardless of latency, while
// credit-limited reads must be throughput-bound by window/RTT. This is the
// core mechanism behind Figure 4a's write-bandwidth asymmetry.
func TestWritesStreamButReadsAreLatencyBound(t *testing.T) {
	cfg := DefaultConfig()
	k, _, _, dev, _, _ := testFabric(t, cfg)
	const total = 64 << 20
	var writeDone, readDone sim.Time
	k.Spawn("writer", func(p *sim.Proc) {
		dev.WriteB(p, 0, total, nil)
		writeDone = p.Now()
	})
	k.Run(0)

	k2, _, _, dev2, _, _ := testFabric(t, cfg)
	k2.Spawn("reader", func(p *sim.Proc) {
		dev2.ReadB(p, 0, total, nil)
		readDone = k2.Now()
	})
	k2.Run(0)

	writeBW := float64(total) / writeDone.Seconds()
	readBW := float64(total) / readDone.Seconds()
	linkBW := dev.Link().BytesPerSec()
	if writeBW < 0.90*linkBW {
		t.Errorf("write streaming BW %.2f GB/s < 90%% of link %.2f GB/s", writeBW/1e9, linkBW/1e9)
	}
	if readBW >= writeBW {
		t.Errorf("read BW %.2f GB/s should be below write BW %.2f GB/s (credit/RTT bound)",
			readBW/1e9, writeBW/1e9)
	}
	// Sanity: credits*chunk/RTT should predict read BW within 2x.
	if readBW < 1e9 {
		t.Errorf("read BW %.2f GB/s implausibly low", readBW/1e9)
	}
}

// More read credits must buy more read bandwidth (until the link caps it).
func TestReadCreditsScaleBandwidth(t *testing.T) {
	measure := func(credits int) float64 {
		k := sim.NewKernel()
		f := NewFabric(k, DefaultConfig())
		hostMem := NewMemCompleter(k, 50e9, 90*sim.Nanosecond)
		f.AttachHostPort("host", LinkConfig{Gen: Gen4, Lanes: 16}, hostMem)
		dev := f.AttachPort("dev", LinkConfig{Gen: Gen3, Lanes: 16, ReadCredits: credits}, nil)
		f.MapRange(f.HostPort(), 0, 1<<30)
		f.IOMMU().Grant("dev", 0, 1<<30)
		const total = 16 << 20
		var done sim.Time
		k.Spawn("reader", func(p *sim.Proc) {
			dev.ReadB(p, 0, total, nil)
			done = p.Now()
		})
		k.Run(0)
		return float64(total) / done.Seconds()
	}
	bw4, bw16, bw64 := measure(4), measure(16), measure(64)
	if !(bw4 < bw16 && bw16 < bw64) {
		t.Errorf("read BW should scale with credits: 4→%.2f, 16→%.2f, 64→%.2f GB/s",
			bw4/1e9, bw16/1e9, bw64/1e9)
	}
}

// P2P transactions must be slower than host-directed ones at equal settings.
func TestP2PPenalty(t *testing.T) {
	cfg := DefaultConfig()
	k := sim.NewKernel()
	f := NewFabric(k, cfg)
	hostMem := NewMemCompleter(k, 50e9, 90*sim.Nanosecond)
	peerMem := NewMemCompleter(k, 50e9, 90*sim.Nanosecond)
	f.AttachHostPort("host", LinkConfig{Gen: Gen4, Lanes: 16}, hostMem)
	peer := f.AttachPort("peer", LinkConfig{Gen: Gen4, Lanes: 16}, peerMem)
	dev := f.AttachPort("dev", LinkConfig{Gen: Gen4, Lanes: 4}, nil)
	f.MapRange(f.HostPort(), 0, 1<<30)
	f.MapRange(peer, 0x10_0000_0000, 1<<30)
	f.IOMMU().Grant("dev", 0, 1<<30)
	f.IOMMU().Grant("dev", 0x10_0000_0000, 1<<30)

	const total = 8 << 20
	var hostDone, p2pDone sim.Time
	k.Spawn("bench", func(p *sim.Proc) {
		start := p.Now()
		dev.ReadB(p, 0, total, nil)
		hostDone = p.Now() - start
		start = p.Now()
		dev.ReadB(p, 0x10_0000_0000, total, nil)
		p2pDone = p.Now() - start
	})
	k.Run(0)
	if p2pDone <= hostDone {
		t.Errorf("P2P read (%v) should be slower than host read (%v)", p2pDone, hostDone)
	}
}

func TestIOMMUFault(t *testing.T) {
	k, f, _, dev, _, _ := testFabric(t, DefaultConfig())
	f.IOMMU().Revoke("dev")
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("DMA without grant did not fault")
		}
		if !strings.Contains(r.(string), "IOMMU") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	// Issue from kernel context so the fault panic is recoverable here.
	dev.Write(0x1000, 4096, nil, nil)
	k.Run(0)
}

func TestIOMMUDisabledAllowsAll(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IOMMUEnabled = false
	k, f, _, dev, _, _ := testFabric(t, cfg)
	f.IOMMU().SetEnabled(false)
	f.IOMMU().Revoke("dev")
	ok := false
	k.Spawn("writer", func(p *sim.Proc) {
		dev.WriteB(p, 0x1000, 4096, nil)
		ok = true
	})
	k.Run(0)
	if !ok {
		t.Fatal("write with disabled IOMMU did not complete")
	}
}

func TestIOMMUWindowEdges(t *testing.T) {
	m := NewIOMMU(true)
	m.Grant("d", 0x1000, 0x1000)
	if err := m.Check("d", 0x1000, 0x1000); err != nil {
		t.Errorf("exact window access rejected: %v", err)
	}
	if err := m.Check("d", 0x0fff, 1); err == nil {
		t.Error("access below window accepted")
	}
	if err := m.Check("d", 0x1fff, 2); err == nil {
		t.Error("access crossing window end accepted")
	}
	if err := m.Check("other", 0x1000, 1); err == nil {
		t.Error("unknown initiator accepted")
	}
}

func TestHostInitiatedBypassesIOMMU(t *testing.T) {
	k, _, host, _, _, _ := testFabric(t, DefaultConfig())
	// No grant for "host": host-initiated DMA must still pass.
	ok := false
	k.Spawn("host", func(p *sim.Proc) {
		host.WriteB(p, 0x10_0000_0000, 4096, nil)
		ok = true
	})
	k.Run(0)
	if !ok {
		t.Fatal("host write blocked by IOMMU")
	}
}

func TestUnmappedAddressPanics(t *testing.T) {
	k, _, _, dev, _, _ := testFabric(t, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("unmapped access did not panic")
		}
	}()
	dev.Write(0xdead_0000_0000, 64, nil, nil)
	k.Run(0)
}

func TestPayloadAccountingExcludesHeaders(t *testing.T) {
	k, _, _, dev, _, _ := testFabric(t, DefaultConfig())
	k.Spawn("w", func(p *sim.Proc) {
		dev.WriteB(p, 0x0, 10000, nil)
	})
	k.Run(0)
	if dev.PayloadTx() != 10000 {
		t.Fatalf("PayloadTx = %d, want exactly 10000 (headers excluded)", dev.PayloadTx())
	}
}

func TestWireBytesOverhead(t *testing.T) {
	f := NewFabric(sim.NewKernel(), DefaultConfig())
	// 1024 payload in 512-byte chunks: 2 headers of 24 bytes.
	if got := f.wireBytes(1024, 512); got != 1024+48 {
		t.Fatalf("wireBytes(1024,512) = %d, want 1072", got)
	}
	if got := f.wireBytes(1, 512); got != 1+24 {
		t.Fatalf("wireBytes(1,512) = %d, want 25", got)
	}
	if got := f.wireBytes(0, 512); got != 0 {
		t.Fatalf("wireBytes(0,512) = %d, want 0", got)
	}
}

func TestZeroLengthOps(t *testing.T) {
	k, _, _, dev, _, _ := testFabric(t, DefaultConfig())
	calls := 0
	dev.Write(0, 0, nil, func() { calls++ })
	dev.Read(0, 0, nil, func() { calls++ })
	k.Run(0)
	if calls != 2 {
		t.Fatalf("zero-length op callbacks = %d, want 2", calls)
	}
}

func TestHopLatencyMath(t *testing.T) {
	// host→device: both props + root complex, no P2P/IOMMU (host exempt).
	// device→host adds IOMMU; device→device adds IOMMU + P2P penalty.
	cfg := DefaultConfig()
	k := sim.NewKernel()
	f := NewFabric(k, cfg)
	host := f.AttachHostPort("host", LinkConfig{Gen: Gen4, Lanes: 16, PropagationLatency: 50}, nil)
	a := f.AttachPort("a", LinkConfig{Gen: Gen4, Lanes: 4, PropagationLatency: 150}, nil)
	b := f.AttachPort("b", LinkConfig{Gen: Gen4, Lanes: 4, PropagationLatency: 150}, nil)
	rc := cfg.RootComplexLatency
	if got, want := f.hopLatency(host, a), sim.Time(50)+rc+150; got != want {
		t.Errorf("host→dev = %v, want %v", got, want)
	}
	if got, want := f.hopLatency(a, host), sim.Time(150)+rc+50+cfg.IOMMULatency; got != want {
		t.Errorf("dev→host = %v, want %v", got, want)
	}
	if got, want := f.hopLatency(a, b), sim.Time(150)+rc+150+cfg.P2PForwardLatency+cfg.IOMMULatency; got != want {
		t.Errorf("dev→dev = %v, want %v", got, want)
	}
}

func TestChanZeroCapPeekFromProducer(t *testing.T) {
	// Peek on a rendezvous channel must see a blocked producer's value.
	k := sim.NewKernel()
	c := sim.NewChan[int](k, 0)
	k.Spawn("p", func(p *sim.Proc) { c.Put(p, 9) })
	k.Spawn("q", func(p *sim.Proc) {
		p.Sleep(5)
		if v, ok := c.Peek(); !ok || v != 9 {
			t.Errorf("Peek = %d,%v", v, ok)
		}
		c.Get(p)
	})
	k.Run(0)
}

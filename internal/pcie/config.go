// Package pcie models a PCI Express fabric at transaction granularity:
// ports with full-duplex serializing links, a root complex that forwards
// both host-bound and peer-to-peer traffic, posted writes, split-transaction
// reads with bounded outstanding-request credits, an IOMMU gating device-
// initiated DMA, and BAR-based address decoding.
//
// The model is deliberately coarser than TLP-by-TLP simulation — payloads
// are charged per-chunk header overhead rather than materialized — but it
// keeps the two properties the SNAcc paper's evaluation hinges on:
//
//  1. Posted writes stream at link rate regardless of latency, while
//     non-posted reads are throughput-bound by outstanding-credit count
//     divided by round-trip latency. This is why the paper's sequential
//     *read* path (SSD pushes data with writes) hits 6.9 GB/s in every
//     buffer variant while the *write* path (SSD pulls data with reads)
//     degrades across P2P.
//  2. Peer-to-peer transactions pay an extra root-complex forwarding
//     penalty relative to host-memory transactions.
package pcie

import "snacc/internal/sim"

// Generation selects the per-lane data rate.
type Generation int

// PCIe generations supported by the model.
const (
	Gen3 Generation = 3
	Gen4 Generation = 4
	Gen5 Generation = 5
)

// laneGBps returns the effective per-lane bandwidth in bytes/second after
// encoding overhead (128b/130b for Gen3+), before TLP header overhead.
func (g Generation) laneGBps() float64 {
	switch g {
	case Gen3:
		return 0.985e9 // 8 GT/s * 128/130
	case Gen4:
		return 1.969e9 // 16 GT/s * 128/130
	case Gen5:
		return 3.938e9 // 32 GT/s * 128/130
	default:
		panic("pcie: unknown generation")
	}
}

// LinkConfig describes one port's link to the root complex.
type LinkConfig struct {
	Gen   Generation
	Lanes int
	// PropagationLatency is the one-way delay of the link (PHY + retimer).
	PropagationLatency sim.Time
	// MaxPayload is the maximum TLP payload (bytes) for writes and read
	// completions through this port.
	MaxPayload int64
	// MaxReadRequest is the maximum read request size issued by this port.
	MaxReadRequest int64
	// ReadCredits bounds the number of outstanding non-posted read requests
	// this port's DMA engine keeps in flight. This is the knob behind the
	// paper's P2P write-bandwidth ceiling.
	ReadCredits int
	// OverrideBytesPerSec, when positive, replaces the Gen×Lanes-derived
	// serialization bandwidth. The host port uses it: the root complex
	// aggregates several device links, so its ingest runs at memory-side
	// bandwidth rather than any single link's width.
	OverrideBytesPerSec float64
}

// BytesPerSec returns the effective link bandwidth.
func (lc LinkConfig) BytesPerSec() float64 {
	if lc.OverrideBytesPerSec > 0 {
		return lc.OverrideBytesPerSec
	}
	return lc.Gen.laneGBps() * float64(lc.Lanes)
}

// EdgeLookahead returns the conservative-sync lookahead of one minimum-cost
// hop through a fabric with this config and the given link: propagation at
// each end plus the root-complex traversal every transaction pays (450 ns
// with defaults). The fabric couples its ports synchronously — a write
// books serialization time on the destination link directly — so the
// pcie complex itself is one shard domain; this value describes a domain
// boundary drawn *around* it (e.g. between the Ethernet ingress domain and
// the pcie+nvme complex in streamer.DomainPlan).
func (c Config) EdgeLookahead(link LinkConfig) sim.Time {
	link = link.withDefaults()
	return 2*link.PropagationLatency + c.RootComplexLatency
}

// withDefaults fills unset fields with standards-typical values.
func (lc LinkConfig) withDefaults() LinkConfig {
	if lc.MaxPayload == 0 {
		lc.MaxPayload = 512
	}
	if lc.MaxReadRequest == 0 {
		lc.MaxReadRequest = 512
	}
	if lc.ReadCredits == 0 {
		lc.ReadCredits = 32
	}
	if lc.PropagationLatency == 0 {
		lc.PropagationLatency = 150 * sim.Nanosecond
	}
	return lc
}

// Config describes fabric-wide parameters.
type Config struct {
	// TLPHeaderBytes is charged once per payload chunk on the wire.
	TLPHeaderBytes int64
	// RootComplexLatency is paid by every transaction traversing the root
	// complex (all of them, in this topology).
	RootComplexLatency sim.Time
	// P2PForwardLatency is paid *additionally* by transactions whose source
	// and destination are both non-host ports.
	P2PForwardLatency sim.Time
	// IOMMUEnabled turns on DMA permission checks for device-initiated
	// transactions; the host driver must grant windows explicitly, exactly
	// as SNAcc's setup requires (§4, "permissions must be granted by the
	// IOMMU").
	IOMMUEnabled bool
	// IOMMULatency is the translation lookup cost added to device DMA when
	// the IOMMU is enabled (IOTLB hit; misses are not modeled).
	IOMMULatency sim.Time
}

// DefaultConfig returns the fabric parameters used by the paper's testbed
// model (EPYC 7302P root complex).
func DefaultConfig() Config {
	return Config{
		TLPHeaderBytes:     24,
		RootComplexLatency: 150 * sim.Nanosecond,
		P2PForwardLatency:  420 * sim.Nanosecond,
		IOMMUEnabled:       true,
		IOMMULatency:       40 * sim.Nanosecond,
	}
}

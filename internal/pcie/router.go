package pcie

import (
	"fmt"
	"sort"
)

// RangeRouter is a Completer that dispatches transactions to sub-completers
// by address range — the decode logic of a device exposing several
// functional windows inside one BAR (the FPGA card routes its BAR between
// NVMe Streamer buffers, PRP windows, queue regions, and TaPaSCo registers).
type RangeRouter struct {
	ranges []routedRange
}

type routedRange struct {
	base uint64
	size int64
	c    Completer
}

// AddRange routes [base, base+size) to c. Overlaps are rejected.
func (r *RangeRouter) AddRange(base uint64, size int64, c Completer) {
	if size <= 0 {
		panic("pcie: RangeRouter range must have positive size")
	}
	for _, rr := range r.ranges {
		if base < rr.base+uint64(rr.size) && rr.base < base+uint64(size) {
			panic(fmt.Sprintf("pcie: RangeRouter overlap at [%#x,+%#x)", base, size))
		}
	}
	r.ranges = append(r.ranges, routedRange{base: base, size: size, c: c})
	sort.Slice(r.ranges, func(i, j int) bool { return r.ranges[i].base < r.ranges[j].base })
}

func (r *RangeRouter) lookup(addr uint64, n int64) Completer {
	lo, hi := 0, len(r.ranges)
	for lo < hi {
		mid := (lo + hi) / 2
		rr := r.ranges[mid]
		switch {
		case addr < rr.base:
			hi = mid
		case addr >= rr.base+uint64(rr.size):
			lo = mid + 1
		default:
			if addr+uint64(n) > rr.base+uint64(rr.size) {
				panic(fmt.Sprintf("pcie: access [%#x,+%#x) crosses window boundary", addr, n))
			}
			return rr.c
		}
	}
	panic(fmt.Sprintf("pcie: no window decodes address %#x", addr))
}

// CompleteRead implements Completer.
func (r *RangeRouter) CompleteRead(addr uint64, n int64, buf []byte, done func()) {
	r.lookup(addr, n).CompleteRead(addr, n, buf, done)
}

// CompleteWrite implements Completer.
func (r *RangeRouter) CompleteWrite(addr uint64, n int64, data []byte) {
	r.lookup(addr, n).CompleteWrite(addr, n, data)
}

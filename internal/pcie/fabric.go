package pcie

import (
	"fmt"
	"sort"

	"snacc/internal/sim"
)

// Completer receives transactions that target a port's address ranges.
// Methods run in kernel/event context (never concurrently); a Completer
// models its internal access time by deferring the done callback.
//
// Transactions optionally carry real payload bytes: buf/data are non-nil
// when the initiator moves content (queue entries, PRP lists, functional
// data) and nil for timing-only traffic. A Completer must tolerate nil.
type Completer interface {
	// CompleteRead is invoked when a read request for [addr, addr+n)
	// arrives. If buf is non-nil (length n) the implementation fills it
	// with the data at addr. It must call done exactly once, at the
	// simulated time the data is ready to be returned on the wire.
	CompleteRead(addr uint64, n int64, buf []byte, done func())
	// CompleteWrite is invoked when the last byte of a posted write to
	// [addr, addr+n) has been delivered. data is nil for timing-only
	// writes.
	CompleteWrite(addr uint64, n int64, data []byte)
}

// region maps an address range to its owning port.
type region struct {
	base uint64
	size int64
	port *Port
}

// Fabric is a single-root PCIe topology: every port hangs off one root
// complex, and all traffic (host-bound or peer-to-peer) traverses it.
type Fabric struct {
	k     *sim.Kernel
	cfg   Config
	ports []*Port
	// regions is kept sorted by base for binary-search routing.
	regions []region
	iommu   *IOMMU
	host    *Port
}

// NewFabric creates an empty fabric.
func NewFabric(k *sim.Kernel, cfg Config) *Fabric {
	f := &Fabric{k: k, cfg: cfg}
	f.iommu = NewIOMMU(cfg.IOMMUEnabled)
	return f
}

// Kernel returns the simulation kernel.
func (f *Fabric) Kernel() *sim.Kernel { return f.k }

// Config returns the fabric configuration.
func (f *Fabric) Config() Config { return f.cfg }

// IOMMU returns the fabric's IOMMU for permission programming.
func (f *Fabric) IOMMU() *IOMMU { return f.iommu }

// AttachPort adds a device to the fabric. The completer may be nil for
// ports that only ever initiate transactions.
func (f *Fabric) AttachPort(name string, lc LinkConfig, c Completer) *Port {
	lc = lc.withDefaults()
	bw := lc.BytesPerSec()
	pt := &Port{
		f:         f,
		name:      name,
		cfg:       lc,
		completer: c,
		// Propagation delay is accounted in hopLatency so the pipes model
		// pure serialization; this keeps cut-through forwarding simple.
		tx:          sim.NewPipe(f.k, bw, 0),
		rx:          sim.NewPipe(f.k, bw, 0),
		credits:     newCreditGate(lc.ReadCredits),
		ctrlCredits: newCreditGate(4),
	}
	f.ports = append(f.ports, pt)
	return pt
}

// AttachHostPort adds the host (root-complex memory) port. Transactions
// touching this port are never classified as peer-to-peer, and host-
// initiated DMA bypasses the IOMMU.
func (f *Fabric) AttachHostPort(name string, lc LinkConfig, c Completer) *Port {
	pt := f.AttachPort(name, lc, c)
	f.host = pt
	return pt
}

// HostPort returns the host port, or nil if none was attached.
func (f *Fabric) HostPort() *Port { return f.host }

// MapRange routes [base, base+size) to pt, modeling a BAR or a host DRAM
// window. Overlapping ranges are rejected.
func (f *Fabric) MapRange(pt *Port, base uint64, size int64) {
	if size <= 0 {
		panic("pcie: MapRange with non-positive size")
	}
	for _, r := range f.regions {
		if base < r.base+uint64(r.size) && r.base < base+uint64(size) {
			panic(fmt.Sprintf("pcie: range [%#x,+%#x) overlaps existing [%#x,+%#x) on %s",
				base, size, r.base, r.size, r.port.name))
		}
	}
	f.regions = append(f.regions, region{base: base, size: size, port: pt})
	sort.Slice(f.regions, func(i, j int) bool { return f.regions[i].base < f.regions[j].base })
}

// Route returns the port owning addr, or nil if unmapped.
func (f *Fabric) Route(addr uint64) *Port {
	lo, hi := 0, len(f.regions)
	for lo < hi {
		mid := (lo + hi) / 2
		r := f.regions[mid]
		switch {
		case addr < r.base:
			hi = mid
		case addr >= r.base+uint64(r.size):
			lo = mid + 1
		default:
			return r.port
		}
	}
	return nil
}

// routeOrPanic resolves addr and enforces IOMMU permissions for the
// initiating port.
func (f *Fabric) routeOrPanic(src *Port, addr uint64, n int64) *Port {
	dst := f.Route(addr)
	if dst == nil {
		panic(fmt.Sprintf("pcie: %s accessed unmapped address %#x", src.name, addr))
	}
	if src != f.host {
		if err := f.iommu.Check(src.name, addr, n); err != nil {
			panic(fmt.Sprintf("pcie: IOMMU fault: %v", err))
		}
	}
	return dst
}

// hopLatency returns the end-to-end propagation cost from src to dst: both
// link propagation delays, root-complex traversal, the P2P penalty and
// IOMMU translation where applicable.
func (f *Fabric) hopLatency(src, dst *Port) sim.Time {
	lat := src.cfg.PropagationLatency + f.cfg.RootComplexLatency + dst.cfg.PropagationLatency
	if src != f.host && dst != f.host {
		lat += f.cfg.P2PForwardLatency
	}
	if src != f.host && f.cfg.IOMMUEnabled {
		lat += f.cfg.IOMMULatency
	}
	return lat
}

// wireBytes returns payload-plus-header bytes for n payload bytes moved in
// chunks of at most chunk bytes.
func (f *Fabric) wireBytes(n, chunk int64) int64 {
	if n <= 0 {
		return 0
	}
	chunks := (n + chunk - 1) / chunk
	return n + chunks*f.cfg.TLPHeaderBytes
}

package pcie

import (
	"bytes"
	"testing"
	"testing/quick"

	"snacc/internal/sim"
)

func TestPayloadRoundTrip(t *testing.T) {
	k, _, _, dev, hostMem, _ := testFabric(t, DefaultConfig())
	want := make([]byte, 12345)
	for i := range want {
		want[i] = byte(i * 7)
	}
	got := make([]byte, len(want))
	k.Spawn("dev", func(p *sim.Proc) {
		dev.WriteB(p, 0x4000, int64(len(want)), want)
		dev.ReadB(p, 0x4000, int64(len(got)), got)
	})
	k.Run(0)
	if !bytes.Equal(got, want) {
		t.Fatal("payload read back differs from payload written")
	}
	// The content must also be visible to host software directly.
	direct := make([]byte, len(want))
	hostMem.Store().ReadBytes(0x4000, direct)
	if !bytes.Equal(direct, want) {
		t.Fatal("host store view differs from written payload")
	}
}

func TestPayloadChunkedReadOrdering(t *testing.T) {
	// A read spanning many MRRS chunks must reassemble in order.
	k, _, _, dev, hostMem, _ := testFabric(t, DefaultConfig())
	want := make([]byte, 8192)
	for i := range want {
		want[i] = byte(i % 251)
	}
	hostMem.Store().WriteBytes(0x9000, want)
	got := make([]byte, len(want))
	k.Spawn("dev", func(p *sim.Proc) {
		dev.ReadB(p, 0x9000, int64(len(got)), got)
	})
	k.Run(0)
	if !bytes.Equal(got, want) {
		t.Fatal("chunked read reassembled incorrectly")
	}
}

func TestReadPaddingSlowsCompletion(t *testing.T) {
	measure := func(pad sim.Time) sim.Time {
		k, _, _, dev, _, _ := testFabric(t, DefaultConfig())
		dev.SetReadPadding(pad)
		var done sim.Time
		k.Spawn("dev", func(p *sim.Proc) {
			dev.ReadB(p, 0, 512, nil)
			done = p.Now()
		})
		k.Run(0)
		return done
	}
	base := measure(0)
	padded := measure(500 * sim.Nanosecond)
	if padded != base+500*sim.Nanosecond {
		t.Fatalf("padding delta = %v, want exactly 500ns", padded-base)
	}
}

func TestSparseMemZeroFill(t *testing.T) {
	s := NewSparseMem()
	buf := []byte{1, 2, 3, 4}
	s.ReadBytes(0x123456, buf)
	for _, b := range buf {
		if b != 0 {
			t.Fatal("unwritten memory must read as zero")
		}
	}
	if s.Pages() != 0 {
		t.Fatal("reads must not materialize pages")
	}
}

func TestSparseMemCrossPage(t *testing.T) {
	s := NewSparseMem()
	data := make([]byte, 3*4096+17)
	for i := range data {
		data[i] = byte(i)
	}
	s.WriteBytes(4090, data) // unaligned, crosses several page boundaries
	got := make([]byte, len(data))
	s.ReadBytes(4090, got)
	if !bytes.Equal(got, data) {
		t.Fatal("cross-page round trip failed")
	}
	// [4090, 16395) touches pages 0 through 4.
	if s.Pages() != 5 {
		t.Fatalf("Pages() = %d, want 5", s.Pages())
	}
}

func TestSparseMemProperty(t *testing.T) {
	// Arbitrary (addr, data) writes must read back identically.
	f := func(addrRaw uint32, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 1<<16 {
			data = data[:1<<16]
		}
		addr := uint64(addrRaw)
		s := NewSparseMem()
		s.WriteBytes(addr, data)
		got := make([]byte, len(data))
		s.ReadBytes(addr, got)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSparseMemOverlappingWrites(t *testing.T) {
	s := NewSparseMem()
	s.WriteBytes(100, []byte{1, 1, 1, 1, 1, 1})
	s.WriteBytes(102, []byte{9, 9})
	got := make([]byte, 6)
	s.ReadBytes(100, got)
	want := []byte{1, 1, 9, 9, 1, 1}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

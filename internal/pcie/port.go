package pcie

import "snacc/internal/sim"

// Port is one device's attachment to the fabric. It can initiate reads and
// writes toward any mapped address and, if it carries a Completer, serve
// transactions that target its own ranges.
type Port struct {
	f         *Fabric
	name      string
	cfg       LinkConfig
	completer Completer

	// tx serializes traffic this port sends toward the root complex
	// (write payloads, read requests, read completions for its own BARs).
	// rx serializes traffic arriving at this port.
	tx, rx *sim.Pipe

	credits *creditGate
	// ctrlCredits is a separate outstanding-read pool for small control
	// transactions (queue-entry and PRP-list fetches). Real controllers
	// run command fetch and data DMA from separate tag pools, so control
	// reads must not steal data-path read credits.
	ctrlCredits *creditGate

	// readPadding is added to every read-chunk completion. The NVMe device
	// model uses it to reproduce the SSD's firmware banding epochs (§5.2's
	// alternating write bandwidth).
	readPadding sim.Time

	// tracer, when attached, captures transactions at this port's
	// completer boundary (the paper's ILA methodology).
	tracer *Tracer

	// identity is the optional config-space header for enumeration.
	identity *Identity

	// Payload accounting for Figure 7: bytes of useful data moved, by
	// direction, excluding header overhead.
	payloadTx int64
	payloadRx int64
}

// Name returns the port name.
func (pt *Port) Name() string { return pt.name }

// Link returns the port's link configuration.
func (pt *Port) Link() LinkConfig { return pt.cfg }

// Fabric returns the owning fabric.
func (pt *Port) Fabric() *Fabric { return pt.f }

// SetReadPadding adds d to the completion path of every subsequent read
// chunk issued by this port.
func (pt *Port) SetReadPadding(d sim.Time) { pt.readPadding = d }

// PayloadTx returns useful bytes this port has sent (writes it initiated
// plus read completions it served).
func (pt *Port) PayloadTx() int64 { return pt.payloadTx }

// PayloadRx returns useful bytes delivered to this port.
func (pt *Port) PayloadRx() int64 { return pt.payloadRx }

// ResetStats zeroes the payload counters and the underlying pipe counters.
func (pt *Port) ResetStats() {
	pt.payloadTx, pt.payloadRx = 0, 0
	pt.tx.ResetStats()
	pt.rx.ResetStats()
}

// writeGranule bounds how much of a posted burst is booked onto the TX link
// at once. Real PCIe arbitrates at TLP granularity, so a megabyte burst must
// not head-of-line-block a 16-byte completion or doorbell for milliseconds;
// chaining the booking in granules lets competing traffic interleave with at
// most a few microseconds of skew.
const writeGranule = 32 * sim.KiB

// Write issues a posted write of n payload bytes to addr. data, if non-nil,
// is the content (length n) delivered to the target's completer. fn (may be
// nil) runs when the last byte has been delivered into the target. Posted
// writes consume no credits: the initiator's link is the only throttle,
// which is what lets the SSD stream read data into any buffer at full rate.
func (pt *Port) Write(addr uint64, n int64, data []byte, fn func()) {
	if n > writeGranule {
		// Chain granule-sized sub-writes: the next granule books its TX
		// slot when the previous granule finishes *serializing*, so the
		// burst still streams at link rate while competing small TLPs can
		// slot in between granules.
		k := pt.f.k
		var step func(off int64)
		step = func(off int64) {
			m := int64(writeGranule)
			last := false
			if m >= n-off {
				m = n - off
				last = true
			}
			var d []byte
			if data != nil {
				d = data[off : off+m]
			}
			cb := fn
			if !last {
				cb = nil
			}
			txDone := pt.writeOne(addr+uint64(off), m, d, cb)
			if !last {
				k.At(txDone, func() { step(off + m) })
			}
		}
		step(0)
		return
	}
	pt.writeOne(addr, n, data, fn)
}

// writeOne books a single posted burst and returns when its TX
// serialization completes.
func (pt *Port) writeOne(addr uint64, n int64, data []byte, fn func()) (txDone sim.Time) {
	if n <= 0 {
		if fn != nil {
			pt.f.k.After(0, fn)
		}
		return pt.f.k.Now()
	}
	dst := pt.f.routeOrPanic(pt, addr, n)
	pt.payloadTx += n
	wire := pt.f.wireBytes(n, pt.cfg.MaxPayload)
	hop := pt.f.hopLatency(pt, dst)
	k := pt.f.k
	// Cut-through: the burst serializes on our TX link, and the target's RX
	// link starts serializing once the first TLP has crossed the fabric.
	txStart, txEnd := pt.tx.ReserveFrom(k.Now(), wire)
	firstTLP := pt.cfg.MaxPayload + pt.f.cfg.TLPHeaderBytes
	if firstTLP > wire {
		firstTLP = wire
	}
	firstAtDst := txStart + sim.TransferTime(firstTLP, pt.tx.BytesPerSec) + hop
	_, rxDone := dst.rx.ReserveFrom(firstAtDst, wire)
	delivered := txEnd + hop
	if rxDone > delivered {
		delivered = rxDone
	}
	k.At(delivered, func() {
		dst.payloadRx += n
		dst.tracer.record(TraceWriteIn, addr, n)
		if dst.completer != nil {
			dst.completer.CompleteWrite(addr, n, data)
		}
		if fn != nil {
			fn()
		}
	})
	return txEnd
}

// Read issues a non-posted read of n payload bytes from addr, split into
// MaxReadRequest-sized requests each holding one outstanding-read credit.
// buf, if non-nil (length n), receives the content. fn (may be nil) runs
// when the final completion byte has arrived. The credit window divided by
// the round-trip latency bounds read throughput — the mechanism behind the
// paper's P2P write-bandwidth ceiling (§5.2).
func (pt *Port) Read(addr uint64, n int64, buf []byte, fn func()) {
	pt.read(addr, n, buf, fn, pt.credits)
}

// ReadCtrl issues a read through the control-transaction credit pool,
// keeping queue-entry and PRP-list fetches off the data-path credits.
func (pt *Port) ReadCtrl(addr uint64, n int64, buf []byte, fn func()) {
	pt.read(addr, n, buf, fn, pt.ctrlCredits)
}

func (pt *Port) read(addr uint64, n int64, buf []byte, fn func(), gate *creditGate) {
	if n <= 0 {
		if fn != nil {
			pt.f.k.After(0, fn)
		}
		return
	}
	dst := pt.f.routeOrPanic(pt, addr, n)
	remaining := n
	pending := 0
	finished := false
	done := func() {
		pending--
		if finished && pending == 0 && fn != nil {
			fn()
		}
	}
	var issue func()
	issue = func() {
		if remaining <= 0 {
			finished = true
			if pending == 0 && fn != nil {
				fn()
			}
			return
		}
		chunk := pt.cfg.MaxReadRequest
		if chunk > remaining {
			chunk = remaining
		}
		off := n - remaining
		chunkAddr := addr + uint64(off)
		var chunkBuf []byte
		if buf != nil {
			chunkBuf = buf[off : off+chunk]
		}
		remaining -= chunk
		pending++
		gate.acquire(func() {
			pt.issueReadChunk(dst, chunkAddr, chunk, chunkBuf, func() {
				gate.release()
				done()
			})
			// Pipeline the next request as soon as this one is on the wire.
			issue()
		})
	}
	issue()
}

// issueReadChunk performs one credit's worth of read: request TLP out,
// target access, completion data back.
func (pt *Port) issueReadChunk(dst *Port, addr uint64, n int64, buf []byte, fn func()) {
	k := pt.f.k
	hdr := pt.f.cfg.TLPHeaderBytes
	hopOut := pt.f.hopLatency(pt, dst)
	pad := pt.readPadding
	reqAt := pt.tx.Reserve(hdr)
	k.At(reqAt+hopOut, func() {
		arriveAt := dst.rx.Reserve(hdr)
		k.At(arriveAt, func() {
			dst.tracer.record(TraceReadReq, addr, n)
			complete := func() {
				// Completion data returns over the target's TX link.
				wire := pt.f.wireBytes(n, dst.cfg.MaxPayload)
				dst.payloadTx += n
				dst.tracer.record(TraceReadCpl, addr, n)
				cplAt := dst.tx.Reserve(wire)
				hopBack := pt.f.hopLatency(dst, pt)
				k.At(cplAt+hopBack+pad, func() {
					rxAt := pt.rx.Reserve(wire)
					k.At(rxAt, func() {
						pt.payloadRx += n
						fn()
					})
				})
			}
			if dst.completer != nil {
				dst.completer.CompleteRead(addr, n, buf, complete)
			} else {
				complete()
			}
		})
	})
}

// WriteB is a blocking wrapper around Write for process-model callers.
func (pt *Port) WriteB(p *sim.Proc, addr uint64, n int64, data []byte) {
	doneC := sim.NewChan[struct{}](pt.f.k, 1)
	pt.Write(addr, n, data, func() { doneC.TryPut(struct{}{}) })
	doneC.Get(p)
}

// ReadB is a blocking wrapper around Read for process-model callers.
func (pt *Port) ReadB(p *sim.Proc, addr uint64, n int64, buf []byte) {
	doneC := sim.NewChan[struct{}](pt.f.k, 1)
	pt.Read(addr, n, buf, func() { doneC.TryPut(struct{}{}) })
	doneC.Get(p)
}

// creditGate is a callback-style counting semaphore for outstanding reads.
type creditGate struct {
	avail int
	q     []func()
}

func newCreditGate(n int) *creditGate { return &creditGate{avail: n} }

func (c *creditGate) acquire(fn func()) {
	if c.avail > 0 {
		c.avail--
		fn()
		return
	}
	c.q = append(c.q, fn)
}

func (c *creditGate) release() {
	if len(c.q) > 0 {
		fn := c.q[0]
		c.q = c.q[1:]
		fn()
		return
	}
	c.avail++
}

package pcie

import "snacc/internal/sim"

// TraceKind classifies a traced bus event at a port.
type TraceKind uint8

// Trace event kinds, as seen at the traced port's boundary.
const (
	// TraceReadReq: a read request from a remote initiator arrived.
	TraceReadReq TraceKind = iota
	// TraceReadCpl: this port's completer returned the data.
	TraceReadCpl
	// TraceWriteIn: a posted write was delivered into this port.
	TraceWriteIn
)

// String names the kind.
func (k TraceKind) String() string {
	switch k {
	case TraceReadReq:
		return "read-req"
	case TraceReadCpl:
		return "read-cpl"
	case TraceWriteIn:
		return "write-in"
	default:
		return "?"
	}
}

// TraceEvent is one captured transaction edge.
type TraceEvent struct {
	At   sim.Time
	Kind TraceKind
	Addr uint64
	Len  int64
}

// Tracer captures transactions at a port, like the Integrated Logic
// Analyzer the paper attaches to the Streamer's DMA interface to diagnose
// the P2P write limitation (§5.2: "The read accesses employed by the NVMe
// controller ... do not occur frequently enough to sustain a higher
// bandwidth, even though our end responds immediately").
type Tracer struct {
	k *sim.Kernel
	// Filter restricts capture to matching addresses (nil captures all).
	Filter func(addr uint64, n int64) bool
	// Limit caps captured events (0 = unlimited).
	Limit int
	// Observer, when set, streams every event passing the Filter to a
	// live consumer — even after Limit stops the capture buffer — so the
	// tracer doubles as a boundary-event source for span tracing without
	// retaining unbounded state.
	Observer func(TraceEvent)
	events   []TraceEvent
}

// NewTracer creates a tracer on k.
func NewTracer(k *sim.Kernel) *Tracer { return &Tracer{k: k} }

func (t *Tracer) record(kind TraceKind, addr uint64, n int64) {
	if t == nil {
		return
	}
	if t.Filter != nil && !t.Filter(addr, n) {
		return
	}
	ev := TraceEvent{At: t.k.Now(), Kind: kind, Addr: addr, Len: n}
	if t.Observer != nil {
		t.Observer(ev)
	}
	if t.Limit > 0 && len(t.events) >= t.Limit {
		return
	}
	t.events = append(t.events, ev)
}

// Events returns the captured trace.
func (t *Tracer) Events() []TraceEvent { return t.events }

// Reset clears the capture buffer.
func (t *Tracer) Reset() { t.events = t.events[:0] }

// OfKind filters the capture by kind.
func (t *Tracer) OfKind(k TraceKind) []TraceEvent {
	var out []TraceEvent
	for _, e := range t.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// MeanGap returns the mean inter-arrival time of events of kind k — the
// quantity the paper's ILA analysis reasons about.
func (t *Tracer) MeanGap(k TraceKind) sim.Time {
	ev := t.OfKind(k)
	if len(ev) < 2 {
		return 0
	}
	return sim.Time(int64(ev[len(ev)-1].At-ev[0].At) / int64(len(ev)-1))
}

// ServiceLatency returns per-request response time statistics by pairing
// read requests with completions in order.
func (t *Tracer) ServiceLatency() *sim.Histogram {
	reqs := t.OfKind(TraceReadReq)
	cpls := t.OfKind(TraceReadCpl)
	n := len(reqs)
	if len(cpls) < n {
		n = len(cpls)
	}
	h := &sim.Histogram{}
	for i := 0; i < n; i++ {
		if cpls[i].At >= reqs[i].At {
			h.Add(cpls[i].At - reqs[i].At)
		}
	}
	return h
}

// AttachTracer installs tr at the port's completer boundary.
func (pt *Port) AttachTracer(tr *Tracer) { pt.tracer = tr }

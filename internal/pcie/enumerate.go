package pcie

import (
	"fmt"
	"sort"
)

// Configuration-space identity and enumeration: instead of hard-coding bus
// addresses, a host can scan the fabric the way a real OS walks PCIe
// config space — read vendor/device/class, size the BAR, assign an address
// window, and program it. Drivers then locate their device by class code
// (01 08 02 for NVMe) exactly as the kernel's probe logic does.

// Identity is a device's configuration-space header subset.
type Identity struct {
	Vendor uint16
	Device uint16
	// Class is the 24-bit class code (base<<16 | sub<<8 | interface).
	Class uint32
	// BARBytes is the device's BAR0 size request (power of two).
	BARBytes int64
	// OnAssign is invoked when enumeration programs the BAR, so the
	// device can anchor its register decode.
	OnAssign func(base uint64)
}

// Well-known class codes.
const (
	// ClassNVMe is mass storage / NVM / NVMe I/O controller.
	ClassNVMe uint32 = 0x010802
	// ClassFPGA is the processing-accelerator class used by FPGA cards.
	ClassFPGA uint32 = 0x120000
)

// DeclareIdentity registers the port's config-space header for
// enumeration. Ports with an identity and no statically mapped BAR get
// their window assigned by Fabric.Enumerate.
func (pt *Port) DeclareIdentity(id Identity) {
	if id.BARBytes > 0 && id.BARBytes&(id.BARBytes-1) != 0 {
		panic("pcie: BAR size request must be a power of two")
	}
	pt.identity = &id
}

// Identity returns the declared identity, or nil.
func (pt *Port) Identity() *Identity { return pt.identity }

// EnumeratedDevice is one discovery result.
type EnumeratedDevice struct {
	Name    string
	Vendor  uint16
	Device  uint16
	Class   uint32
	BARBase uint64
	BARSize int64
}

// Enumerate scans every attached port, assigns BAR windows starting at
// windowBase for devices that declared a size request and are not yet
// mapped, and returns the discovered inventory (sorted by name for
// determinism).
func (f *Fabric) Enumerate(windowBase uint64) []EnumeratedDevice {
	var out []EnumeratedDevice
	cursor := windowBase
	ports := append([]*Port(nil), f.ports...)
	sort.Slice(ports, func(i, j int) bool { return ports[i].name < ports[j].name })
	for _, pt := range ports {
		id := pt.identity
		if id == nil {
			continue
		}
		dev := EnumeratedDevice{
			Name:   pt.name,
			Vendor: id.Vendor,
			Device: id.Device,
			Class:  id.Class,
		}
		if id.BARBytes > 0 && !f.hasMapping(pt) {
			base := (cursor + uint64(id.BARBytes) - 1) &^ (uint64(id.BARBytes) - 1)
			f.MapRange(pt, base, id.BARBytes)
			cursor = base + uint64(id.BARBytes)
			if id.OnAssign != nil {
				id.OnAssign(base)
			}
			dev.BARBase = base
			dev.BARSize = id.BARBytes
		} else if id.BARBytes > 0 {
			dev.BARBase, dev.BARSize = f.mappingOf(pt)
		}
		out = append(out, dev)
	}
	return out
}

// FindByClass filters an inventory by class code.
func FindByClass(devs []EnumeratedDevice, class uint32) []EnumeratedDevice {
	var out []EnumeratedDevice
	for _, d := range devs {
		if d.Class == class {
			out = append(out, d)
		}
	}
	return out
}

// hasMapping reports whether any range routes to pt.
func (f *Fabric) hasMapping(pt *Port) bool {
	for _, r := range f.regions {
		if r.port == pt {
			return true
		}
	}
	return false
}

// mappingOf returns pt's first mapped range.
func (f *Fabric) mappingOf(pt *Port) (uint64, int64) {
	for _, r := range f.regions {
		if r.port == pt {
			return r.base, r.size
		}
	}
	panic(fmt.Sprintf("pcie: port %s has no mapping", pt.name))
}

package pcie

import (
	"testing"

	"snacc/internal/sim"
)

func enumRig() (*sim.Kernel, *Fabric) {
	k := sim.NewKernel()
	f := NewFabric(k, DefaultConfig())
	NewHost(f, DefaultHostConfig())
	return k, f
}

func declare(f *Fabric, name string, class uint32, barBytes int64) (*Port, *uint64) {
	pt := f.AttachPort(name, LinkConfig{Gen: Gen4, Lanes: 4}, NewMemCompleter(f.Kernel(), 10e9, 100))
	assigned := new(uint64)
	pt.DeclareIdentity(Identity{
		Vendor: 0x1234, Device: 0x5678, Class: class, BARBytes: barBytes,
		OnAssign: func(base uint64) { *assigned = base },
	})
	return pt, assigned
}

func TestEnumerateAssignsAlignedWindows(t *testing.T) {
	_, f := enumRig()
	_, a := declare(f, "devA", ClassNVMe, 16*1024)
	_, b := declare(f, "devB", ClassNVMe, 64*1024)
	devs := f.Enumerate(0x10_0000_0000)
	if len(devs) != 2 {
		t.Fatalf("enumerated %d devices, want 2", len(devs))
	}
	if *a == 0 || *b == 0 {
		t.Fatal("OnAssign never fired")
	}
	for _, d := range devs {
		if d.BARBase%uint64(d.BARSize) != 0 {
			t.Errorf("%s BAR %#x not aligned to %#x", d.Name, d.BARBase, d.BARSize)
		}
	}
	// Windows must not overlap.
	if *a < *b+64*1024 && *b < *a+16*1024 {
		t.Fatalf("BARs overlap: %#x / %#x", *a, *b)
	}
	// The assigned windows must actually route.
	if f.Route(*a) == nil || f.Route(*b) == nil {
		t.Fatal("assigned BARs do not route")
	}
}

func TestEnumerateIsDeterministic(t *testing.T) {
	build := func() []EnumeratedDevice {
		_, f := enumRig()
		declare(f, "zeta", ClassNVMe, 16*1024)
		declare(f, "alpha", ClassFPGA, 64*1024)
		return f.Enumerate(0x10_0000_0000)
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("enumeration order unstable: %+v vs %+v", a[i], b[i])
		}
	}
	if a[0].Name != "alpha" {
		t.Fatalf("expected name-sorted inventory, got %s first", a[0].Name)
	}
}

func TestFindByClass(t *testing.T) {
	_, f := enumRig()
	declare(f, "ssd0", ClassNVMe, 16*1024)
	declare(f, "ssd1", ClassNVMe, 16*1024)
	declare(f, "fpga", ClassFPGA, 64*1024)
	devs := f.Enumerate(0x10_0000_0000)
	nvmes := FindByClass(devs, ClassNVMe)
	if len(nvmes) != 2 {
		t.Fatalf("found %d NVMe devices, want 2", len(nvmes))
	}
	fpgas := FindByClass(devs, ClassFPGA)
	if len(fpgas) != 1 || fpgas[0].Name != "fpga" {
		t.Fatalf("FPGA scan wrong: %+v", fpgas)
	}
}

func TestEnumerateSkipsStaticMappings(t *testing.T) {
	_, f := enumRig()
	pt, assigned := declare(f, "static", ClassNVMe, 16*1024)
	f.MapRange(pt, 0x20_0000_0000, 16*1024)
	devs := f.Enumerate(0x10_0000_0000)
	if *assigned != 0 {
		t.Fatal("statically mapped device re-assigned")
	}
	if devs[0].BARBase != 0x20_0000_0000 {
		t.Fatalf("inventory should report the static base, got %#x", devs[0].BARBase)
	}
}

func TestDeclareIdentityRejectsNonPow2(t *testing.T) {
	_, f := enumRig()
	pt := f.AttachPort("bad", LinkConfig{Gen: Gen4, Lanes: 4}, nil)
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two BAR request accepted")
		}
	}()
	pt.DeclareIdentity(Identity{BARBytes: 3000})
}

package pcie

import "snacc/internal/sim"

// MemCompleter is a simple memory target: fixed access latency plus a
// serializing internal bandwidth. It models host DRAM seen from the PCIe
// side (the real memory controller has far more bandwidth than the
// 16-32 GB/s a PCIe device can demand of it, so a single pipe suffices) and
// is also used as a plain BAR RAM in tests. Richer on-card memories with
// read/write turnaround live in internal/memmodel.
//
// Addresses presented to the completer are global bus addresses; Base is
// subtracted before touching the backing store so the store is indexed from
// zero.
type MemCompleter struct {
	k *sim.Kernel
	// AccessLatency is paid by every read before data starts returning.
	AccessLatency sim.Time
	// Base is the bus address this memory is mapped at.
	Base uint64
	// internal serializes accesses at the memory's bandwidth.
	internal *sim.Pipe
	// store holds content, when functional data is in play.
	store *SparseMem

	reads, writes int64
}

// NewMemCompleter creates a memory with the given bandwidth and read
// latency, backed by a sparse content store.
func NewMemCompleter(k *sim.Kernel, bytesPerSec float64, accessLatency sim.Time) *MemCompleter {
	return &MemCompleter{
		k:             k,
		AccessLatency: accessLatency,
		internal:      sim.NewPipe(k, bytesPerSec, 0),
		store:         NewSparseMem(),
	}
}

// Store exposes the backing content store so host-local software models
// (drivers writing queue entries, applications preparing buffers) can touch
// memory without crossing the fabric.
func (m *MemCompleter) Store() *SparseMem { return m.store }

// CompleteRead implements Completer.
func (m *MemCompleter) CompleteRead(addr uint64, n int64, buf []byte, done func()) {
	m.reads++
	if buf != nil {
		m.store.ReadBytes(addr-m.Base, buf)
	}
	ready := m.internal.Reserve(n) + m.AccessLatency
	m.k.At(ready, done)
}

// CompleteWrite implements Completer.
func (m *MemCompleter) CompleteWrite(addr uint64, n int64, data []byte) {
	m.writes++
	if data != nil {
		m.store.WriteBytes(addr-m.Base, data)
	}
	m.internal.Reserve(n)
}

// Reads returns the number of read transactions served.
func (m *MemCompleter) Reads() int64 { return m.reads }

// Writes returns the number of write transactions received.
func (m *MemCompleter) Writes() int64 { return m.writes }

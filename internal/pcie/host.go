package pcie

import (
	"fmt"

	"snacc/internal/sim"
)

// Host bundles the root-complex side of the system: the host port, host
// DRAM with a content store, a pinned-buffer allocator, and write watches
// that let polled drivers observe completion queues without busy-loop
// events.
type Host struct {
	Port *Port
	Mem  *WatchedMem

	memBase uint64
	memSize int64
	brk     uint64
}

// HostConfig describes the host attachment.
type HostConfig struct {
	Link LinkConfig
	// MemBase/MemSize locate host DRAM in the bus address map.
	MemBase uint64
	MemSize int64
	// MemBytesPerSec and MemLatency parameterize the DRAM seen from PCIe.
	MemBytesPerSec float64
	MemLatency     sim.Time
}

// DefaultHostConfig models the EPYC 7302P host in the paper's testbed.
func DefaultHostConfig() HostConfig {
	return HostConfig{
		// The host "link" is the root complex itself: it terminates every
		// device link, so its serialization runs at memory-side bandwidth.
		Link: LinkConfig{
			Gen:                 Gen4,
			Lanes:               16,
			PropagationLatency:  50 * sim.Nanosecond,
			OverrideBytesPerSec: 45e9,
		},
		MemBase:        0x1_0000_0000,
		MemSize:        8 * sim.GiB,
		MemBytesPerSec: 50e9,
		MemLatency:     90 * sim.Nanosecond,
	}
}

// NewHost attaches the host to the fabric and maps its DRAM window.
func NewHost(f *Fabric, cfg HostConfig) *Host {
	mem := &WatchedMem{MemCompleter: NewMemCompleter(f.Kernel(), cfg.MemBytesPerSec, cfg.MemLatency)}
	mem.Base = cfg.MemBase
	port := f.AttachHostPort("host", cfg.Link, mem)
	f.MapRange(port, cfg.MemBase, cfg.MemSize)
	return &Host{Port: port, Mem: mem, memBase: cfg.MemBase, memSize: cfg.MemSize, brk: cfg.MemBase}
}

// Alloc reserves n bytes of host DRAM with the given power-of-two alignment
// and returns its bus address. Allocation is a bump pointer — simulations
// set up their buffers once.
func (h *Host) Alloc(n int64, align int64) uint64 {
	if align <= 0 {
		align = 1
	}
	if align&(align-1) != 0 {
		panic("pcie: Alloc alignment must be a power of two")
	}
	addr := (h.brk + uint64(align) - 1) &^ (uint64(align) - 1)
	if addr+uint64(n) > h.memBase+uint64(h.memSize) {
		panic(fmt.Sprintf("pcie: host memory exhausted allocating %d bytes", n))
	}
	h.brk = addr + uint64(n)
	return addr
}

// AllocChunks reserves count physically contiguous chunks of chunkSize
// each, scattered in the address space (the 4 MiB kernel-driver limit from
// §4.3), and returns their base addresses.
func (h *Host) AllocChunks(count int, chunkSize int64) []uint64 {
	bases := make([]uint64, count)
	for i := range bases {
		bases[i] = h.Alloc(chunkSize, 4096)
		// Leave a guard page so chunks are non-adjacent, forcing the
		// address-stitching path the paper describes.
		h.brk += 4096
	}
	return bases
}

// WatchedMem extends MemCompleter with write watches: a registered callback
// fires whenever a posted write lands in its range. Polled drivers use this
// to observe CQE arrival without simulating every poll-loop iteration.
type WatchedMem struct {
	*MemCompleter
	watches []watch
}

type watch struct {
	base uint64
	size int64
	fn   func(addr uint64, n int64, data []byte)
}

// Watch registers fn for writes intersecting [base, base+size).
func (w *WatchedMem) Watch(base uint64, size int64, fn func(addr uint64, n int64, data []byte)) {
	w.watches = append(w.watches, watch{base: base, size: size, fn: fn})
}

// CompleteWrite implements Completer, forwarding to the base memory and
// then notifying watchers.
func (w *WatchedMem) CompleteWrite(addr uint64, n int64, data []byte) {
	w.MemCompleter.CompleteWrite(addr, n, data)
	for _, wa := range w.watches {
		if addr < wa.base+uint64(wa.size) && wa.base < addr+uint64(n) {
			wa.fn(addr, n, data)
		}
	}
}

package pcie

// SparseMem is a byte-addressable sparse memory backing store organized in
// 4 KiB pages. It holds the *contents* of simulated memories — host DRAM,
// FPGA URAM/DRAM buffers, NAND media — while the timing of accesses is
// modeled separately. Pages are allocated on first write; reads of
// never-written pages return zeros, matching both DRAM after init and NVMe
// deallocated-block semantics.
//
// Timing-only simulations pass nil data buffers through the fabric; the
// store is then never touched, keeping large benchmarks cheap.
type SparseMem struct {
	pages map[uint64][]byte
}

const spPageShift = 12
const spPageSize = 1 << spPageShift

// NewSparseMem returns an empty store.
func NewSparseMem() *SparseMem {
	return &SparseMem{pages: make(map[uint64][]byte)}
}

// WriteBytes stores data at addr.
func (s *SparseMem) WriteBytes(addr uint64, data []byte) {
	for len(data) > 0 {
		pageNo := addr >> spPageShift
		off := int(addr & (spPageSize - 1))
		n := spPageSize - off
		if n > len(data) {
			n = len(data)
		}
		page, ok := s.pages[pageNo]
		if !ok {
			page = make([]byte, spPageSize)
			s.pages[pageNo] = page
		}
		copy(page[off:off+n], data[:n])
		addr += uint64(n)
		data = data[n:]
	}
}

// ReadBytes fills buf with the contents at addr.
func (s *SparseMem) ReadBytes(addr uint64, buf []byte) {
	for len(buf) > 0 {
		pageNo := addr >> spPageShift
		off := int(addr & (spPageSize - 1))
		n := spPageSize - off
		if n > len(buf) {
			n = len(buf)
		}
		if page, ok := s.pages[pageNo]; ok {
			copy(buf[:n], page[off:off+n])
		} else {
			for i := 0; i < n; i++ {
				buf[i] = 0
			}
		}
		addr += uint64(n)
		buf = buf[n:]
	}
}

// Pages returns the number of materialized 4 KiB pages.
func (s *SparseMem) Pages() int { return len(s.pages) }

package pcie

import (
	"testing"

	"snacc/internal/sim"
)

type recCompleter struct {
	k      *sim.Kernel
	reads  []uint64
	writes []uint64
}

func (r *recCompleter) CompleteRead(addr uint64, n int64, buf []byte, done func()) {
	r.reads = append(r.reads, addr)
	r.k.After(1, done)
}

func (r *recCompleter) CompleteWrite(addr uint64, n int64, data []byte) {
	r.writes = append(r.writes, addr)
}

func TestRangeRouterDispatch(t *testing.T) {
	k := sim.NewKernel()
	a := &recCompleter{k: k}
	b := &recCompleter{k: k}
	var rr RangeRouter
	rr.AddRange(0x1000, 0x1000, a)
	rr.AddRange(0x8000, 0x2000, b)
	rr.CompleteWrite(0x1800, 16, nil)
	rr.CompleteWrite(0x9000, 16, nil)
	rr.CompleteRead(0x8000, 8, nil, func() {})
	k.Run(0)
	if len(a.writes) != 1 || a.writes[0] != 0x1800 {
		t.Fatalf("a.writes = %v", a.writes)
	}
	if len(b.writes) != 1 || len(b.reads) != 1 {
		t.Fatalf("b got %v / %v", b.writes, b.reads)
	}
}

func TestRangeRouterRejectsOverlap(t *testing.T) {
	var rr RangeRouter
	rr.AddRange(0x1000, 0x1000, nil)
	defer func() {
		if recover() == nil {
			t.Error("overlapping range accepted")
		}
	}()
	rr.AddRange(0x1800, 0x1000, nil)
}

func TestRangeRouterUndecodedPanics(t *testing.T) {
	var rr RangeRouter
	rr.AddRange(0x1000, 0x1000, nil)
	defer func() {
		if recover() == nil {
			t.Error("undecoded address accepted")
		}
	}()
	rr.CompleteWrite(0x5000, 4, nil)
}

func TestRangeRouterCrossWindowPanics(t *testing.T) {
	k := sim.NewKernel()
	var rr RangeRouter
	rr.AddRange(0x1000, 0x1000, &recCompleter{k: k})
	rr.AddRange(0x2000, 0x1000, &recCompleter{k: k})
	defer func() {
		if recover() == nil {
			t.Error("window-crossing access accepted")
		}
	}()
	rr.CompleteWrite(0x1ff0, 0x20, nil)
}

func TestHostAllocAlignment(t *testing.T) {
	k := sim.NewKernel()
	f := NewFabric(k, DefaultConfig())
	h := NewHost(f, DefaultHostConfig())
	a := h.Alloc(100, 4096)
	b := h.Alloc(100, 4096)
	if a%4096 != 0 || b%4096 != 0 {
		t.Fatalf("allocations not aligned: %#x %#x", a, b)
	}
	if b <= a {
		t.Fatal("allocations overlap")
	}
}

func TestHostAllocChunksNonAdjacent(t *testing.T) {
	k := sim.NewKernel()
	f := NewFabric(k, DefaultConfig())
	h := NewHost(f, DefaultHostConfig())
	chunks := h.AllocChunks(4, 4*sim.MiB)
	for i := 1; i < len(chunks); i++ {
		if chunks[i] == chunks[i-1]+uint64(4*sim.MiB) {
			t.Fatalf("chunks %d and %d adjacent; the guard page is missing", i-1, i)
		}
	}
}

func TestTracerFilterAndLimit(t *testing.T) {
	k := sim.NewKernel()
	tr := NewTracer(k)
	tr.Filter = func(addr uint64, n int64) bool { return addr >= 0x1000 }
	tr.Limit = 2
	tr.record(TraceWriteIn, 0x500, 64) // filtered out
	tr.record(TraceWriteIn, 0x1000, 64)
	tr.record(TraceWriteIn, 0x2000, 64)
	tr.record(TraceWriteIn, 0x3000, 64) // over limit
	if len(tr.Events()) != 2 {
		t.Fatalf("events = %d, want 2", len(tr.Events()))
	}
	tr.Reset()
	if len(tr.Events()) != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestTracerMeanGapAndService(t *testing.T) {
	k := sim.NewKernel()
	tr := NewTracer(k)
	for i := 0; i < 4; i++ {
		k.At(sim.Time(i*100), func() { tr.record(TraceReadReq, 0, 4096) })
		k.At(sim.Time(i*100+30), func() { tr.record(TraceReadCpl, 0, 4096) })
	}
	k.Run(0)
	if g := tr.MeanGap(TraceReadReq); g != 100 {
		t.Fatalf("MeanGap = %v, want 100", g)
	}
	if m := tr.ServiceLatency().Mean(); m != 30 {
		t.Fatalf("service mean = %v, want 30", m)
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.record(TraceWriteIn, 0, 1) // must not panic
}

func TestTraceKindString(t *testing.T) {
	if TraceReadReq.String() != "read-req" || TraceReadCpl.String() != "read-cpl" ||
		TraceWriteIn.String() != "write-in" || TraceKind(99).String() != "?" {
		t.Fatal("TraceKind names wrong")
	}
}

// Package bufpool recycles the payload byte slices the simulation's hot
// paths would otherwise allocate per message: staged write payloads and
// drain chunks in the NVMe Streamer, SQE fetch batches and PRP lists in the
// controller model, and the 4-byte doorbell writes on the PCIe port path.
//
// Buffers are pooled in power-of-two size classes backed by sync.Pool, so
// the pools are safe to share between the parallel experiment engine's
// workers (each worker simulates a private kernel, but all kernels draw
// from the same process-wide pools). Determinism is unaffected: Get returns
// buffers with undefined contents, and every call site fully overwrites the
// bytes it later reads.
package bufpool

import (
	"math/bits"
	"sync"
)

// maxClass bounds pooled buffers at 1<<maxClass bytes (16 MiB) — larger
// requests fall through to plain allocation.
const maxClass = 24

var classes [maxClass + 1]sync.Pool

// class returns the smallest power-of-two exponent c with 1<<c >= n.
func class(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Get returns a slice of length n with undefined contents. The caller must
// overwrite every byte it will read.
func Get(n int) []byte {
	if n < 0 {
		panic("bufpool: negative length")
	}
	c := class(n)
	if c > maxClass {
		return make([]byte, n)
	}
	if v := classes[c].Get(); v != nil {
		b := *(v.(*[]byte))
		return b[:n]
	}
	return make([]byte, n, 1<<c)
}

// GetZeroed returns a zero-filled slice of length n.
func GetZeroed(n int) []byte {
	b := Get(n)
	for i := range b {
		b[i] = 0
	}
	return b
}

// Put recycles a buffer obtained from Get. Slices whose capacity is not an
// exact pool class (foreign allocations) are dropped silently, so callers
// may hand back any buffer that merely passed through them. Put(nil) is a
// no-op. The caller must not retain references to b.
func Put(b []byte) {
	c := cap(b)
	if c == 0 || c&(c-1) != 0 {
		return // foreign or empty buffer
	}
	cl := class(c)
	if cl > maxClass {
		return
	}
	b = b[:c]
	classes[cl].Put(&b)
}

package bufpool

import "testing"

func TestGetLengthAndClasses(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 63, 64, 65, 4096, 1 << 20, 1<<20 + 1} {
		b := Get(n)
		if len(b) != n {
			t.Fatalf("Get(%d) returned len %d", n, len(b))
		}
		if c := cap(b); c != 0 && c&(c-1) != 0 {
			t.Fatalf("Get(%d) returned non-power-of-two cap %d", n, c)
		}
		Put(b)
	}
}

func TestReuse(t *testing.T) {
	b := Get(4096)
	for i := range b {
		b[i] = 0xAB
	}
	Put(b)
	// The next same-class Get may or may not return the same backing array
	// (sync.Pool gives no guarantee), but the contents contract is
	// "undefined": callers must overwrite. Just exercise the round trip.
	c := Get(4000)
	if len(c) != 4000 {
		t.Fatalf("len %d", len(c))
	}
	Put(c)
}

func TestGetZeroed(t *testing.T) {
	b := Get(512)
	for i := range b {
		b[i] = 0xFF
	}
	Put(b)
	z := GetZeroed(512)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("GetZeroed byte %d = %#x", i, v)
		}
	}
	Put(z)
}

func TestPutForeignBuffer(t *testing.T) {
	Put(nil)
	Put(make([]byte, 0))
	Put(make([]byte, 100)) // cap 100 is not a pool class; must be dropped
	Put(make([]byte, 33, 48))
}

func TestOversize(t *testing.T) {
	n := (1 << maxClass) + 1
	b := Get(n)
	if len(b) != n {
		t.Fatalf("oversize Get returned len %d", len(b))
	}
	Put(b) // dropped: cap exceeds the largest class
}

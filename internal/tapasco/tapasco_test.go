package tapasco

import (
	"bytes"

	"testing"

	"snacc/internal/nvme"
	"snacc/internal/sim"
	"snacc/internal/streamer"
)

const testBAR = 0x10_0000_0000

func TestWindowAllocationAligned(t *testing.T) {
	k := sim.NewKernel()
	pl := NewPlatform(k, DefaultU280())
	a := pl.AllocWindow(16 * sim.MiB)
	b := pl.AllocWindow(256 * sim.MiB)
	c := pl.AllocWindow(2 * sim.MiB)
	for _, w := range []struct {
		base uint64
		size int64
	}{{a, 16 * sim.MiB}, {b, 256 * sim.MiB}, {c, 2 * sim.MiB}} {
		if w.base%uint64(w.size) != 0 {
			t.Errorf("window %#x not aligned to %#x", w.base, w.size)
		}
	}
	if !(a < b && b < c) {
		t.Errorf("windows not monotonically allocated: %#x %#x %#x", a, b, c)
	}
}

func TestWindowAllocationRejectsNonPow2(t *testing.T) {
	k := sim.NewKernel()
	pl := NewPlatform(k, DefaultU280())
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two window accepted")
		}
	}()
	pl.AllocWindow(3 * sim.MiB)
}

func TestDRAMReservationExhaustion(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultU280()
	cfg.DRAM.Size = 256 * sim.MiB
	pl := NewPlatform(k, cfg)
	pl.ReserveDRAM(128 * sim.MiB)
	pl.ReserveDRAM(128 * sim.MiB)
	defer func() {
		if recover() == nil {
			t.Error("over-reservation of card DRAM accepted")
		}
	}()
	pl.ReserveDRAM(1)
}

func TestDriverDiscoversGeometry(t *testing.T) {
	k := sim.NewKernel()
	pl := NewPlatform(k, DefaultU280())
	devCfg := nvme.DefaultConfig("ssd0", testBAR)
	nvme.New(k, pl.Fabric, devCfg)
	drv := NewDriver(pl, "ssd0", testBAR)
	ok := false
	k.Spawn("init", func(p *sim.Proc) {
		if err := drv.InitController(p); err != nil {
			t.Errorf("init: %v", err)
			return
		}
		ok = true
	})
	k.Run(0)
	if !ok {
		t.Fatal("init incomplete")
	}
	if drv.LBASize() != 512 {
		t.Errorf("LBASize = %d", drv.LBASize())
	}
	if got, want := drv.CapacityBlocks(), uint64(devCfg.NamespaceBytes/512); got != want {
		t.Errorf("capacity = %d, want %d", got, want)
	}
}

func TestAttachBeforeInitFails(t *testing.T) {
	// Creating I/O queues on a disabled controller must surface an error,
	// not hang: the admin SQ doorbell rings a queue that does not exist.
	k := sim.NewKernel()
	pl := NewPlatform(k, DefaultU280())
	nvme.New(k, pl.Fabric, nvme.DefaultConfig("ssd0", testBAR))
	st := pl.AddStreamer(streamer.DefaultConfig("s", 0, streamer.URAM))
	drv := NewDriver(pl, "ssd0", testBAR)
	defer func() {
		if recover() == nil {
			t.Error("attach without init should fail loudly")
		}
	}()
	k.Spawn("init", func(p *sim.Proc) {
		_ = drv.AttachStreamer(p, st, 1)
	})
	k.Run(0)
}

func TestIOMMUGrantsScopedToStreamerWindow(t *testing.T) {
	// After AttachStreamer, the SSD may touch the streamer's window but not
	// other card addresses.
	k := sim.NewKernel()
	pl := NewPlatform(k, DefaultU280())
	dev := nvme.New(k, pl.Fabric, nvme.DefaultConfig("ssd0", testBAR))
	st := pl.AddStreamer(streamer.DefaultConfig("s", 0, streamer.URAM))
	drv := NewDriver(pl, "ssd0", testBAR)
	k.Spawn("init", func(p *sim.Proc) {
		if err := drv.InitController(p); err != nil {
			t.Errorf("%v", err)
			return
		}
		if err := drv.AttachStreamer(p, st, 1); err != nil {
			t.Errorf("%v", err)
		}
	})
	k.Run(0)
	iommu := pl.Fabric.IOMMU()
	if err := iommu.Check("ssd0", st.Config().WindowBase, 4096); err != nil {
		t.Errorf("window access rejected: %v", err)
	}
	outside := st.Config().WindowBase + uint64(st.WindowSize())
	if err := iommu.Check("ssd0", outside, 4096); err == nil {
		t.Error("access beyond the streamer window accepted")
	}
	_ = dev
}

func TestTwoDriversTwoSSDs(t *testing.T) {
	k := sim.NewKernel()
	pl := NewPlatform(k, DefaultU280())
	nvme.New(k, pl.Fabric, nvme.DefaultConfig("ssdA", testBAR))
	nvme.New(k, pl.Fabric, nvme.DefaultConfig("ssdB", testBAR+0x100000))
	stA := pl.AddStreamer(streamer.DefaultConfig("sA", 0, streamer.URAM))
	stB := pl.AddStreamer(streamer.DefaultConfig("sB", 0, streamer.URAM))
	drvA := NewDriver(pl, "ssdA", testBAR)
	drvB := NewDriver(pl, "ssdB", testBAR+0x100000)
	ok := false
	k.Spawn("init", func(p *sim.Proc) {
		for _, step := range []func() error{
			func() error { return drvA.InitController(p) },
			func() error { return drvB.InitController(p) },
			func() error { return drvA.AttachStreamer(p, stA, 1) },
			func() error { return drvB.AttachStreamer(p, stB, 1) },
		} {
			if err := step(); err != nil {
				t.Errorf("%v", err)
				return
			}
		}
		ok = true
	})
	k.Run(0)
	if !ok {
		t.Fatal("dual init incomplete")
	}
}

func TestXUPVVHPlatformRunsTheStack(t *testing.T) {
	// §4.5: the plugin is available for the U280 and the Bittware XUP-VVH;
	// the whole stack must initialize and move data on the second platform.
	k := sim.NewKernel()
	pl := NewPlatform(k, DefaultXUPVVH())
	devCfg := nvme.DefaultConfig("ssd0", testBAR)
	devCfg.Functional = true
	nvme.New(k, pl.Fabric, devCfg)
	stCfg := streamer.DefaultConfig("s", 0, streamer.OnboardDRAM)
	stCfg.Functional = true
	st := pl.AddStreamer(stCfg)
	drv := NewDriver(pl, "ssd0", testBAR)
	ok := false
	k.Spawn("main", func(p *sim.Proc) {
		if err := drv.InitController(p); err != nil {
			t.Errorf("%v", err)
			return
		}
		if err := drv.AttachStreamer(p, st, 1); err != nil {
			t.Errorf("%v", err)
			return
		}
		c := streamer.NewClient(st)
		data := make([]byte, 64*1024)
		for i := range data {
			data[i] = byte(i)
		}
		c.Write(p, 0, int64(len(data)), data)
		got := c.Read(p, 0, int64(len(data)))
		for i := range data {
			if got[i] != data[i] {
				t.Error("XUP-VVH round trip corrupted")
				return
			}
		}
		ok = true
	})
	k.Run(0)
	if !ok {
		t.Fatal("XUP-VVH stack did not complete")
	}
}

func TestTwoStreamersOneSSD(t *testing.T) {
	// §7: "each additional NVMe Streamer only requires one additional
	// queue pair" — two Streamers attach to the same controller on queue
	// pairs 1 and 2 and run concurrently with intact data.
	k := sim.NewKernel()
	pl := NewPlatform(k, DefaultU280())
	devCfg := nvme.DefaultConfig("ssd0", testBAR)
	devCfg.Functional = true
	nvme.New(k, pl.Fabric, devCfg)
	mk := func(name string) *streamer.Streamer {
		cfg := streamer.DefaultConfig(name, 0, streamer.URAM)
		cfg.Functional = true
		return pl.AddStreamer(cfg)
	}
	stA, stB := mk("snaccA"), mk("snaccB")
	drv := NewDriver(pl, "ssd0", testBAR)
	failed := true
	k.Spawn("main", func(p *sim.Proc) {
		if err := drv.InitController(p); err != nil {
			t.Errorf("init: %v", err)
			return
		}
		if err := drv.AttachStreamer(p, stA, 1); err != nil {
			t.Errorf("attach A: %v", err)
			return
		}
		if err := drv.AttachStreamer(p, stB, 2); err != nil {
			t.Errorf("attach B: %v", err)
			return
		}
		a, b := streamer.NewClient(stA), streamer.NewClient(stB)
		// Concurrent disjoint writes from both streamers.
		const n = 4 * sim.MiB
		dataA, dataB := make([]byte, n), make([]byte, n)
		for i := range dataA {
			dataA[i], dataB[i] = byte(i), byte(i*3+1)
		}
		done := sim.NewChan[struct{}](k, 1)
		k.Spawn("writerB", func(bp *sim.Proc) {
			b.Write(bp, uint64(64*sim.MiB), n, dataB)
			done.TryPut(struct{}{})
		})
		a.Write(p, 0, n, dataA)
		done.Get(p)
		// Cross-read: each streamer reads what the other wrote.
		if got := a.Read(p, uint64(64*sim.MiB), n); !bytes.Equal(got, dataB) {
			t.Error("streamer A read of B's data corrupted")
			return
		}
		if got := b.Read(p, 0, n); !bytes.Equal(got, dataA) {
			t.Error("streamer B read of A's data corrupted")
			return
		}
		failed = false
	})
	k.Run(0)
	if failed {
		t.Fatal("two-streamer run did not complete")
	}
}

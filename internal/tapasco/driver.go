package tapasco

import (
	"fmt"

	"snacc/internal/nvme"
	"snacc/internal/sim"
	"snacc/internal/streamer"
)

// Driver is the custom host-side PCIe driver of §4.6: it owns the NVMe
// admin queue (deliberately kept on the host — "managing the NVMe admin
// queue ... on the FPGA side limits system debuggability") and performs the
// one-time initialization: admin queue setup, I/O queue creation pointing
// at the Streamer's windows, IOMMU grants, and Streamer configuration.
// After Setup returns, the host is out of the data path entirely.
type Driver struct {
	pl      *Platform
	ssdName string
	bar     uint64

	adminEntries int
	asq, acq     uint64
	sqTail       int
	cqHead       int
	phase        bool
	nextCID      uint16
	pending      map[uint16]func(nvme.Completion)

	lbaSize  int64
	nsBlocks uint64
}

const adminDepth = 16

// NewDriver prepares a driver for the SSD ssdName whose register BAR is at
// barBase. Loading the driver grants the SSD DMA access to host memory (the
// kernel maps the admin queues and identify buffers there).
func NewDriver(pl *Platform, ssdName string, barBase uint64) *Driver {
	d := &Driver{
		pl:           pl,
		ssdName:      ssdName,
		bar:          barBase,
		adminEntries: adminDepth,
		phase:        true,
		pending:      make(map[uint16]func(nvme.Completion)),
	}
	d.asq = pl.Host.Alloc(adminDepth*nvme.SQESize, nvme.PageSize)
	d.acq = pl.Host.Alloc(adminDepth*nvme.CQESize, nvme.PageSize)
	pl.Host.Mem.Watch(d.acq, adminDepth*nvme.CQESize, func(addr uint64, n int64, data []byte) {
		d.reap()
	})
	hostCfg := pl.cfg.Host
	pl.Fabric.IOMMU().Grant(ssdName, hostCfg.MemBase, hostCfg.MemSize)
	return d
}

// LBASize returns the namespace block size (after InitController).
func (d *Driver) LBASize() int64 { return d.lbaSize }

// CapacityBlocks returns the namespace capacity (after InitController).
func (d *Driver) CapacityBlocks() uint64 { return d.nsBlocks }

func (d *Driver) hostOff(bus uint64) uint64 { return bus - d.pl.Host.Mem.Base }

func (d *Driver) reap() {
	for {
		raw := make([]byte, nvme.CQESize)
		d.pl.Host.Mem.Store().ReadBytes(d.hostOff(d.acq)+uint64(d.cqHead*nvme.CQESize), raw)
		cqe, err := nvme.UnmarshalCompletion(raw)
		if err != nil || cqe.Phase != d.phase {
			return
		}
		d.cqHead++
		if d.cqHead == d.adminEntries {
			d.cqHead = 0
			d.phase = !d.phase
		}
		d.pl.Host.Port.Write(d.bar+nvme.RegDoorbellBase+4, 4, le32b(uint32(d.cqHead)), nil)
		cb := d.pending[cqe.CID]
		delete(d.pending, cqe.CID)
		if cb == nil {
			panic("tapasco: admin completion without a waiter")
		}
		cb(cqe)
	}
}

// adminCmd submits one admin command and blocks until its completion.
func (d *Driver) adminCmd(p *sim.Proc, cmd nvme.Command) (nvme.Completion, error) {
	cmd.CID = d.nextCID
	d.nextCID = (d.nextCID + 1) % uint16(2*d.adminEntries)
	ch := sim.NewChan[nvme.Completion](d.pl.K, 1)
	d.pending[cmd.CID] = func(c nvme.Completion) { ch.TryPut(c) }
	d.pl.Host.Mem.Store().WriteBytes(d.hostOff(d.asq)+uint64(d.sqTail*nvme.SQESize), cmd.Marshal())
	d.sqTail = (d.sqTail + 1) % d.adminEntries
	d.pl.Host.Port.WriteB(p, d.bar+nvme.RegDoorbellBase, 4, le32b(uint32(d.sqTail)))
	cpl := ch.Get(p)
	if cpl.Status != nvme.StatusSuccess {
		return cpl, &nvme.StatusError{Op: cmd.Opcode, CID: cpl.CID, Status: cpl.Status}
	}
	return cpl, nil
}

// InitController resets and enables the NVMe controller and discovers the
// namespace geometry.
func (d *Driver) InitController(p *sim.Proc) error {
	h := d.pl.Host
	h.Port.WriteB(p, d.bar+nvme.RegCC, 4, le32b(0))
	h.Port.WriteB(p, d.bar+nvme.RegAQA, 4, le32b(uint32(adminDepth-1)|uint32(adminDepth-1)<<16))
	h.Port.WriteB(p, d.bar+nvme.RegASQ, 8, le64b(d.asq))
	h.Port.WriteB(p, d.bar+nvme.RegACQ, 8, le64b(d.acq))
	h.Port.WriteB(p, d.bar+nvme.RegCC, 4, le32b(nvme.CCEnable))
	for i := 0; ; i++ {
		buf := make([]byte, 4)
		h.Port.ReadB(p, d.bar+nvme.RegCSTS, 4, buf)
		if le32(buf)&nvme.CSTSReady != 0 {
			break
		}
		if i > 1000 {
			return fmt.Errorf("tapasco: controller never became ready")
		}
		p.Sleep(10 * sim.Microsecond)
	}
	idBuf := h.Alloc(nvme.PageSize, nvme.PageSize)
	if _, err := d.adminCmd(p, nvme.Command{Opcode: nvme.OpIdentify, PRP1: idBuf, CDW10: nvme.CNSController}); err != nil {
		return err
	}
	if _, err := d.adminCmd(p, nvme.Command{Opcode: nvme.OpIdentify, NSID: 1, PRP1: idBuf, CDW10: nvme.CNSNamespace}); err != nil {
		return err
	}
	ns := make([]byte, nvme.PageSize)
	h.Mem.Store().ReadBytes(d.hostOff(idBuf), ns)
	d.nsBlocks = le64(ns[0:8])
	d.lbaSize = 1 << ns[130]
	return nil
}

// AttachStreamer creates I/O queue pair qid on the SSD with the SQ and CQ
// located *inside the Streamer's FPGA window*, grants the IOMMU windows
// both directions need, and programs the Streamer's doorbell registers.
// This is the complete §4.6 sequence; afterwards the data path runs with
// no host involvement.
func (d *Driver) AttachStreamer(p *sim.Proc, st *streamer.Streamer, qid uint16) error {
	cfg := st.Config()
	// IOMMU: the SSD must reach the Streamer window (queues, PRP window,
	// payload buffers); the FPGA must reach the SSD doorbells and, for the
	// host-DRAM variant, the pinned buffers in host memory.
	iommu := d.pl.Fabric.IOMMU()
	iommu.Grant(d.ssdName, cfg.WindowBase, st.WindowSize())
	iommu.Grant(d.pl.cfg.CardName, d.bar, nvme.BARSize)
	if cfg.Variant == streamer.HostDRAM {
		hostCfg := d.pl.cfg.Host
		iommu.Grant(d.pl.cfg.CardName, hostCfg.MemBase, hostCfg.MemSize)
	}

	if err := d.createStreamerQueues(p, st, qid); err != nil {
		return err
	}
	// Wire the crash-recovery ladder: the Streamer polls CSTS for fatal
	// status and, when its breaker trips, calls back into the driver to
	// reset the controller and rebuild both queue levels.
	st.ConfigureStatus(d.bar + nvme.RegCSTS)
	st.SetResetHandler(func(p *sim.Proc) error {
		return d.ResetAndReattach(p, st, qid)
	})
	return nil
}

// createStreamerQueues creates one SSD I/O queue pair per Streamer queue —
// device qids qid..qid+IOQueues-1 — each pointing at the matching SQ/CQ
// window inside the Streamer's BAR region, and programs the Streamer with
// the doorbell addresses. Shared by first attach and post-reset reattach
// (the admin path is identical; the Streamer's replay re-syncs its cursors).
func (d *Driver) createStreamerQueues(p *sim.Proc, st *streamer.Streamer, qid uint16) error {
	depth := st.Config().QueueDepth
	for i := 0; i < st.IOQueues(); i++ {
		id := qid + uint16(i)
		if _, err := d.adminCmd(p, nvme.Command{
			Opcode: nvme.OpCreateIOCQ,
			PRP1:   st.CQBusAddr(i),
			CDW10:  uint32(id) | uint32(depth-1)<<16,
			CDW11:  1,
		}); err != nil {
			return fmt.Errorf("create IOCQ %d: %w", id, err)
		}
		if _, err := d.adminCmd(p, nvme.Command{
			Opcode: nvme.OpCreateIOSQ,
			PRP1:   st.SQBusAddr(i),
			CDW10:  uint32(id) | uint32(depth-1)<<16,
			CDW11:  1 | uint32(id)<<16,
		}); err != nil {
			return fmt.Errorf("create IOSQ %d: %w", id, err)
		}
		sqDB := d.bar + nvme.RegDoorbellBase + uint64(2*id)*4
		cqDB := d.bar + nvme.RegDoorbellBase + uint64(2*id+1)*4
		if i == 0 {
			st.Configure(sqDB, cqDB, d.lbaSize)
		} else {
			st.ConfigureQueue(i, sqDB, cqDB)
		}
	}
	return nil
}

// ResetController performs an NVMe controller-level reset after a crash:
// disable the controller (CC.EN=0, which clears a latched CSTS.CFS), rebuild
// the host-side admin queue state, reprogram the admin queue registers, and
// re-enable. Namespace geometry is kept from InitController. Returns an
// error when the controller stays fatal, never answers (surprise removal
// floats all-1s), or never becomes ready again.
func (d *Driver) ResetController(p *sim.Proc) error {
	h := d.pl.Host
	h.Port.WriteB(p, d.bar+nvme.RegCC, 4, le32b(0))
	for i := 0; ; i++ {
		buf := make([]byte, 4)
		h.Port.ReadB(p, d.bar+nvme.RegCSTS, 4, buf)
		v := le32(buf)
		if v == ^uint32(0) {
			return fmt.Errorf("tapasco: controller absent (CSTS floats all-1s)")
		}
		if v&(nvme.CSTSReady|nvme.CSTSFatal) == 0 {
			break
		}
		if i > 1000 {
			return fmt.Errorf("tapasco: controller never left ready/fatal state (CSTS %#x)", v)
		}
		p.Sleep(10 * sim.Microsecond)
	}
	// Discard stale admin state: any in-flight admin commands died with the
	// old controller generation, and the completion ring restarts at phase 1
	// — zero it so leftover entries cannot alias the new phase.
	d.sqTail, d.cqHead, d.phase = 0, 0, true
	d.pending = make(map[uint16]func(nvme.Completion))
	h.Mem.Store().WriteBytes(d.hostOff(d.acq), make([]byte, adminDepth*nvme.CQESize))
	h.Port.WriteB(p, d.bar+nvme.RegAQA, 4, le32b(uint32(adminDepth-1)|uint32(adminDepth-1)<<16))
	h.Port.WriteB(p, d.bar+nvme.RegASQ, 8, le64b(d.asq))
	h.Port.WriteB(p, d.bar+nvme.RegACQ, 8, le64b(d.acq))
	h.Port.WriteB(p, d.bar+nvme.RegCC, 4, le32b(nvme.CCEnable))
	for i := 0; ; i++ {
		buf := make([]byte, 4)
		h.Port.ReadB(p, d.bar+nvme.RegCSTS, 4, buf)
		v := le32(buf)
		if v == ^uint32(0) {
			return fmt.Errorf("tapasco: controller absent (CSTS floats all-1s)")
		}
		if v&nvme.CSTSReady != 0 {
			break
		}
		if i > 1000 {
			return fmt.Errorf("tapasco: controller never became ready after reset")
		}
		p.Sleep(10 * sim.Microsecond)
	}
	return nil
}

// ReattachQueues recreates I/O queue pairs qid..qid+IOQueues-1 at the
// Streamer's existing window addresses after a controller reset. IOMMU
// grants and the Streamer's doorbell programming from AttachStreamer are
// still valid; re-running Configure only refreshes them idempotently.
func (d *Driver) ReattachQueues(p *sim.Proc, st *streamer.Streamer, qid uint16) error {
	return d.createStreamerQueues(p, st, qid)
}

// ResetAndReattach is the full recovery sequence the Streamer's circuit
// breaker invokes: controller reset followed by I/O queue rebuild.
func (d *Driver) ResetAndReattach(p *sim.Proc, st *streamer.Streamer, qid uint16) error {
	if err := d.ResetController(p); err != nil {
		return err
	}
	return d.ReattachQueues(p, st, qid)
}

// Little-endian helpers.

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func le64(b []byte) uint64 {
	return uint64(le32(b)) | uint64(le32(b[4:]))<<32
}

func le32b(v uint32) []byte {
	return []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
}

func le64b(v uint64) []byte {
	b := make([]byte, 8)
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	return b
}

package tapasco

import (
	"fmt"

	"snacc/internal/sim"
)

// DMAEngine models TaPaSCo's platform DMA engine (§2.1: the toolchain
// "automatically generates platform-specific infrastructure, such as an
// interrupt controller and a DMA engine"): a card-resident mover between
// host memory and card DRAM, programmed through descriptor registers in
// the card BAR and signalling completion with the same MSI path as the PE
// slots.
type DMAEngine struct {
	pl   *Platform
	base uint64
	slot int // interrupt vector

	hostAddr uint64
	devOff   uint64
	length   uint64
	// direction: 0 = host → card DRAM, 1 = card DRAM → host.
	dir  uint32
	busy bool

	kick *sim.Chan[struct{}]

	transfers  int64
	bytesMoved int64
}

// DMA register offsets.
const (
	dmaRegHostLo = 0x00
	dmaRegHostHi = 0x04
	dmaRegDevLo  = 0x08
	dmaRegDevHi  = 0x0C
	dmaRegLenLo  = 0x10
	dmaRegLenHi  = 0x14
	dmaRegCtrl   = 0x18 // bit0 start, bit1 direction
	dmaWindow    = 4096
)

// AddDMAEngine instantiates the engine and maps its register window.
func (pl *Platform) AddDMAEngine() *DMAEngine {
	e := &DMAEngine{
		pl:   pl,
		base: pl.AllocWindow(dmaWindow),
		slot: -1, // assigned by NewRuntime, after the PE slots
		kick: sim.NewChan[struct{}](pl.K, 1),
	}
	pl.Router.AddRange(e.base, dmaWindow, (*dmaRegs)(e))
	pl.dma = e
	pl.K.Spawn("tapasco.dma", e.loop)
	return e
}

// Transfers and BytesMoved report engine statistics.
func (e *DMAEngine) Transfers() int64  { return e.transfers }
func (e *DMAEngine) BytesMoved() int64 { return e.bytesMoved }

// loop executes queued descriptors: the engine reads or writes host memory
// over PCIe in MaxReadRequest-sized bursts while accessing card DRAM
// locally.
func (e *DMAEngine) loop(p *sim.Proc) {
	p.SetDaemon(true)
	for {
		e.kick.Get(p)
		n := int64(e.length)
		if e.dir == 0 {
			// Host → card DRAM: non-posted reads of host memory, then the
			// payload lands in DRAM.
			e.pl.Card.ReadB(p, e.hostAddr, n, nil)
			ch := sim.NewChan[struct{}](e.pl.K, 1)
			e.pl.DRAM.WriteAccess(e.devOff, n, nil, func() { ch.TryPut(struct{}{}) })
			ch.Get(p)
		} else {
			// Card DRAM → host: local read, posted writes toward the host.
			ch := sim.NewChan[struct{}](e.pl.K, 1)
			e.pl.DRAM.ReadAccess(e.devOff, n, nil, func() { ch.TryPut(struct{}{}) })
			ch.Get(p)
			e.pl.Card.WriteB(p, e.hostAddr, n, nil)
		}
		e.transfers++
		e.bytesMoved += n
		e.busy = false
		e.pl.raiseInterrupt(e.slot)
	}
}

// dmaRegs decodes the engine's register window.
type dmaRegs DMAEngine

// CompleteWrite implements pcie.Completer.
func (r *dmaRegs) CompleteWrite(addr uint64, n int64, data []byte) {
	e := (*DMAEngine)(r)
	if data == nil {
		panic("tapasco: DMA register write requires data")
	}
	v := le32(data)
	switch addr - e.base {
	case dmaRegHostLo:
		e.hostAddr = (e.hostAddr &^ 0xFFFFFFFF) | uint64(v)
	case dmaRegHostHi:
		e.hostAddr = (e.hostAddr & 0xFFFFFFFF) | uint64(v)<<32
	case dmaRegDevLo:
		e.devOff = (e.devOff &^ 0xFFFFFFFF) | uint64(v)
	case dmaRegDevHi:
		e.devOff = (e.devOff & 0xFFFFFFFF) | uint64(v)<<32
	case dmaRegLenLo:
		e.length = (e.length &^ 0xFFFFFFFF) | uint64(v)
	case dmaRegLenHi:
		e.length = (e.length & 0xFFFFFFFF) | uint64(v)<<32
	case dmaRegCtrl:
		if v&1 != 0 {
			if e.busy {
				panic("tapasco: DMA started while busy")
			}
			e.busy = true
			e.dir = (v >> 1) & 1
			e.kick.TryPut(struct{}{})
		}
	default:
		panic(fmt.Sprintf("tapasco: write to unmodeled DMA register %#x", addr-e.base))
	}
}

// CompleteRead implements pcie.Completer.
func (r *dmaRegs) CompleteRead(addr uint64, n int64, buf []byte, done func()) {
	e := (*DMAEngine)(r)
	if buf != nil {
		var v uint32
		if addr-e.base == dmaRegCtrl && e.busy {
			v = 1
		}
		for i := 0; i < len(buf) && i < 4; i++ {
			buf[i] = byte(v >> (8 * i))
		}
	}
	e.pl.K.After(100*sim.Nanosecond, done)
}

// ---- runtime-level memory management ----

// AllocDevice reserves card DRAM for application buffers and returns its
// device offset (tapasco::alloc).
func (rt *Runtime) AllocDevice(n int64) uint64 {
	return rt.pl.ReserveDRAM(n)
}

// CopyToDevice moves n bytes from host memory to card DRAM through the DMA
// engine (tapasco::copy_to), blocking until the completion interrupt.
func (rt *Runtime) CopyToDevice(p *sim.Proc, hostAddr, devOff uint64, n int64) {
	rt.dmaTransfer(p, hostAddr, devOff, n, 0)
}

// CopyFromDevice moves n bytes from card DRAM to host memory.
func (rt *Runtime) CopyFromDevice(p *sim.Proc, hostAddr, devOff uint64, n int64) {
	rt.dmaTransfer(p, hostAddr, devOff, n, 1)
}

func (rt *Runtime) dmaTransfer(p *sim.Proc, hostAddr, devOff uint64, n int64, dir uint32) {
	e := rt.pl.dma
	if e == nil {
		panic("tapasco: no DMA engine composed (Platform.AddDMAEngine)")
	}
	h := rt.pl.Host.Port
	ch := sim.NewChan[struct{}](rt.pl.K, 1)
	rt.waiters[e.slot] = ch
	h.WriteB(p, e.base+dmaRegHostLo, 4, le32b(uint32(hostAddr)))
	h.WriteB(p, e.base+dmaRegHostHi, 4, le32b(uint32(hostAddr>>32)))
	h.WriteB(p, e.base+dmaRegDevLo, 4, le32b(uint32(devOff)))
	h.WriteB(p, e.base+dmaRegDevHi, 4, le32b(uint32(devOff>>32)))
	h.WriteB(p, e.base+dmaRegLenLo, 4, le32b(uint32(n)))
	h.WriteB(p, e.base+dmaRegLenHi, 4, le32b(uint32(n>>32)))
	h.WriteB(p, e.base+dmaRegCtrl, 4, le32b(1|dir<<1))
	ch.Get(p)
	delete(rt.waiters, e.slot)
}

// Package tapasco models the slice of the TaPaSCo framework SNAcc builds
// on (§2.1, §4.5, §4.6): the platform assembly that attaches the FPGA card
// to the PCIe fabric, carves BAR windows for plugins such as the NVMe
// Streamer, reserves card-DRAM regions behind the single memory controller,
// and the host-side driver that initializes the NVMe controller and wires
// its queues to the Streamer.
package tapasco

import (
	"fmt"

	"snacc/internal/memmodel"
	"snacc/internal/pcie"
	"snacc/internal/sim"
	"snacc/internal/streamer"
)

// PlatformConfig selects the FPGA card model.
type PlatformConfig struct {
	// CardName appears in fabric diagnostics and IOMMU grants.
	CardName string
	// Link is the card's PCIe attachment (Alveo U280: Gen3 x16).
	Link pcie.LinkConfig
	// BARBase / BARSize locate the card's memory BAR. TaPaSCo creates a
	// 64 MB BAR by default; designs that map on-board DRAM grow it (§4.5:
	// "a second BAR register has to be added once more than 8 MB of
	// memory is utilized") — the model folds both into one window.
	BARBase uint64
	BARSize int64
	// DRAM parameterizes the single on-card memory controller TaPaSCo
	// instantiates.
	DRAM memmodel.DRAMConfig
	// Host attachment parameters.
	Host pcie.HostConfig
}

// DefaultU280 returns the Alveo U280 profile used in the paper's testbed.
func DefaultU280() PlatformConfig {
	return PlatformConfig{
		CardName: "u280",
		Link: pcie.LinkConfig{
			Gen:                pcie.Gen3,
			Lanes:              16,
			MaxPayload:         512,
			MaxReadRequest:     4096,
			ReadCredits:        8,
			PropagationLatency: 150 * sim.Nanosecond,
		},
		BARBase: 0x20_0000_0000,
		BARSize: sim.GiB,
		DRAM:    memmodel.DefaultDRAMConfig(),
		Host:    pcie.DefaultHostConfig(),
	}
}

// DefaultXUPVVH returns the second platform the SNAcc plugin supports
// (§4.5): the Bittware XUP-VVH (VU37P). Same PCIe attachment; its four
// DDR4 DIMMs give the single TaPaSCo controller a deeper memory.
func DefaultXUPVVH() PlatformConfig {
	cfg := DefaultU280()
	cfg.CardName = "xupvvh"
	cfg.DRAM.Size = 4 * 16 * sim.GiB
	return cfg
}

// Platform is an assembled system: host, fabric, FPGA card.
type Platform struct {
	K      *sim.Kernel
	Fabric *pcie.Fabric
	Host   *pcie.Host
	Card   *pcie.Port
	Router *pcie.RangeRouter
	DRAM   *memmodel.DRAM

	cfg     PlatformConfig
	barBrk  uint64
	dramBrk uint64

	// PE composition (pe.go), DMA engine and interrupt plumbing.
	slots    map[uint32][]*peSlot
	allSlots []*peSlot
	dma      *DMAEngine
	msiBase  uint64
}

// NewPlatform assembles fabric, host and card.
func NewPlatform(k *sim.Kernel, cfg PlatformConfig) *Platform {
	f := pcie.NewFabric(k, pcie.DefaultConfig())
	host := pcie.NewHost(f, cfg.Host)
	router := &pcie.RangeRouter{}
	card := f.AttachPort(cfg.CardName, cfg.Link, router)
	card.DeclareIdentity(pcie.Identity{
		Vendor:   0x10EE, // Xilinx
		Device:   0x5000,
		Class:    pcie.ClassFPGA,
		BARBytes: cfg.BARSize,
	})
	f.MapRange(card, cfg.BARBase, cfg.BARSize)
	return &Platform{
		K:      k,
		Fabric: f,
		Host:   host,
		Card:   card,
		Router: router,
		DRAM:   memmodel.NewDRAM(k, cfg.DRAM),
		cfg:    cfg,
		barBrk: cfg.BARBase,
	}
}

// Config returns the platform configuration.
func (pl *Platform) Config() PlatformConfig { return pl.cfg }

// AllocWindow reserves a size-aligned window in the card BAR.
func (pl *Platform) AllocWindow(size int64) uint64 {
	if size <= 0 || size&(size-1) != 0 {
		panic("tapasco: BAR windows must be power-of-two sized")
	}
	base := (pl.barBrk + uint64(size) - 1) &^ (uint64(size) - 1)
	if base+uint64(size) > pl.cfg.BARBase+uint64(pl.cfg.BARSize) {
		panic(fmt.Sprintf("tapasco: BAR exhausted allocating %d bytes", size))
	}
	pl.barBrk = base + uint64(size)
	return base
}

// ReserveDRAM takes a region of card DRAM away from user logic ("we must
// reserve space in DRAM that cannot be used by the user application",
// §5.4) and returns its offset in the DRAM address space.
func (pl *Platform) ReserveDRAM(n int64) uint64 {
	if pl.dramBrk+uint64(n) > uint64(pl.DRAM.Size()) {
		panic("tapasco: card DRAM exhausted")
	}
	off := pl.dramBrk
	pl.dramBrk += uint64(n)
	return off
}

// AddStreamer instantiates an NVMe Streamer plugin: allocates its BAR
// window, provisions the variant's buffer memory, and wires its windows
// into the card's address decode.
func (pl *Platform) AddStreamer(cfg streamer.Config) *streamer.Streamer {
	var res streamer.Resources
	switch cfg.Variant {
	case streamer.URAM:
		res.Local = memmodel.NewURAM(pl.K, memmodel.URAMConfig{
			Size:       cfg.ReadBufBytes,
			WidthBytes: 64,
			ClockHz:    300e6,
			Latency:    100 * sim.Nanosecond,
		})
	case streamer.OnboardDRAM:
		res.Local = pl.DRAM
		res.LocalBase = pl.ReserveDRAM(cfg.ReadBufBytes + cfg.WriteBufBytes)
	case streamer.HostDRAM:
		// The kernel driver can only pin 4 MiB contiguous chunks (§4.3).
		const chunk = 4 * sim.MiB
		res.HostRead = memmodel.NewChunkedBuffer(chunk, pl.Host.AllocChunks(int(cfg.ReadBufBytes/chunk), chunk))
		res.HostWrite = memmodel.NewChunkedBuffer(chunk, pl.Host.AllocChunks(int(cfg.WriteBufBytes/chunk), chunk))
	}
	// Probe the window size by building a temporary config-only instance:
	// the layout depends only on the configuration.
	size := streamer.WindowSizeFor(cfg)
	cfg.WindowBase = pl.AllocWindow(size)
	return streamer.New(pl.K, cfg, res, pl.Card, pl.Router)
}

// AddStreamerHBM instantiates an on-card-buffer Streamer whose staging
// memory is the HBM stack instead of the single DDR4 controller — the §7
// proposal for multi-SSD setups ("leverage HBM and distribute data buffers
// across different HBM controllers"). The variant must be OnboardDRAM.
func (pl *Platform) AddStreamerHBM(cfg streamer.Config, hbm *memmodel.HBM) *streamer.Streamer {
	if cfg.Variant != streamer.OnboardDRAM {
		panic("tapasco: HBM staging applies to the on-card-buffer variant")
	}
	res := streamer.Resources{Local: hbm, LocalBase: 0}
	size := streamer.WindowSizeFor(cfg)
	cfg.WindowBase = pl.AllocWindow(size)
	return streamer.New(pl.K, cfg, res, pl.Card, pl.Router)
}

package tapasco

import (
	"fmt"

	"snacc/internal/sim"
)

// This file models the general-purpose half of TaPaSCo that SNAcc plugs
// into (§2.1): user accelerators ("Processing Elements") composed into
// slots with a standard AXI4-Lite control interface, an interrupt
// controller signalling job completion to the host, and the runtime that
// "automatically manages data transfers and PE execution, requiring only a
// few lines of user code".

// PE is a user accelerator kernel. Run executes one job given the argument
// registers and returns the value for the return register; it runs as a
// simulation process and may consume simulated time.
type PE interface {
	Name() string
	Run(p *sim.Proc, args []uint64) uint64
}

// PEFunc adapts a plain function to the PE interface.
type PEFunc struct {
	Label string
	Fn    func(p *sim.Proc, args []uint64) uint64
}

// Name implements PE.
func (f PEFunc) Name() string { return f.Label }

// Run implements PE.
func (f PEFunc) Run(p *sim.Proc, args []uint64) uint64 { return f.Fn(p, args) }

// Control register layout of one PE slot window (4 KiB), following the
// TaPaSCo/HLS convention.
const (
	peRegCtrl   = 0x00 // write 1: start; read bit1: done
	peRegIER    = 0x04 // interrupt enable
	peRegRetLo  = 0x10
	peRegRetHi  = 0x14
	peRegArgs   = 0x20 // 64-bit argument registers, 8 bytes apart
	peSlotBytes = 4096
	peMaxArgs   = 16
)

// peSlot is one composed PE instance with its control window.
type peSlot struct {
	pl     *Platform
	id     int
	kernel uint32
	pe     PE
	base   uint64

	args       [peMaxArgs]uint64
	retVal     uint64
	busy       bool
	done       bool
	intrEna    bool
	launchHeld bool

	startCh *sim.Chan[struct{}]
}

// Compose instantiates count copies of the PE produced by factory under
// kernel ID kid, allocating control windows in the card BAR and starting
// the slot processes — the equivalent of TaPaSCo's composition step.
func (pl *Platform) Compose(kid uint32, count int, factory func(i int) PE) {
	if pl.slots == nil {
		pl.slots = make(map[uint32][]*peSlot)
	}
	for i := 0; i < count; i++ {
		s := &peSlot{
			pl:      pl,
			id:      len(pl.allSlots),
			kernel:  kid,
			pe:      factory(i),
			base:    pl.AllocWindow(peSlotBytes),
			startCh: sim.NewChan[struct{}](pl.K, 1),
		}
		pl.Router.AddRange(s.base, peSlotBytes, (*peSlotRegs)(s))
		pl.slots[kid] = append(pl.slots[kid], s)
		pl.allSlots = append(pl.allSlots, s)
		pl.K.Spawn(fmt.Sprintf("pe%d.%s", s.id, s.pe.Name()), s.loop)
	}
}

// loop waits for start commands and executes jobs.
func (s *peSlot) loop(p *sim.Proc) {
	p.SetDaemon(true)
	for {
		s.startCh.Get(p)
		args := make([]uint64, peMaxArgs)
		copy(args, s.args[:])
		s.retVal = s.pe.Run(p, args)
		s.busy = false
		s.done = true
		if s.intrEna {
			s.pl.raiseInterrupt(s.id)
		}
	}
}

// peSlotRegs decodes the slot's control window.
type peSlotRegs peSlot

// CompleteWrite implements pcie.Completer for register writes.
func (r *peSlotRegs) CompleteWrite(addr uint64, n int64, data []byte) {
	s := (*peSlot)(r)
	off := addr - s.base
	if data == nil {
		panic("tapasco: PE register write requires data")
	}
	switch {
	case off == peRegCtrl:
		if le32(data)&1 != 0 {
			if s.busy {
				panic(fmt.Sprintf("tapasco: PE slot %d started while busy", s.id))
			}
			s.busy = true
			s.done = false
			s.startCh.TryPut(struct{}{})
		}
	case off == peRegIER:
		s.intrEna = le32(data)&1 != 0
	case off >= peRegArgs && off < peRegArgs+peMaxArgs*8:
		idx := (off - peRegArgs) / 8
		if n == 8 {
			s.args[idx] = le64(data)
		} else {
			// 32-bit half-writes, low then high.
			if (off-peRegArgs)%8 == 0 {
				s.args[idx] = (s.args[idx] &^ 0xFFFFFFFF) | uint64(le32(data))
			} else {
				s.args[(off-peRegArgs-4)/8] = (s.args[(off-peRegArgs-4)/8] & 0xFFFFFFFF) | uint64(le32(data))<<32
			}
		}
	default:
		panic(fmt.Sprintf("tapasco: write to unmodeled PE register %#x", off))
	}
}

// CompleteRead implements pcie.Completer for register reads.
func (r *peSlotRegs) CompleteRead(addr uint64, n int64, buf []byte, done func()) {
	s := (*peSlot)(r)
	off := addr - s.base
	if buf != nil {
		var v uint32
		switch off {
		case peRegCtrl:
			if s.done {
				v |= 2
			}
			if s.busy {
				v |= 1
			}
		case peRegRetLo:
			v = uint32(s.retVal)
		case peRegRetHi:
			v = uint32(s.retVal >> 32)
		}
		for i := 0; i < len(buf) && i < 4; i++ {
			buf[i] = byte(v >> (8 * i))
		}
	}
	s.pl.K.After(100*sim.Nanosecond, done)
}

// ---- interrupt controller ----

// Interrupts are delivered MSI-style: the card posts a write to a per-slot
// host address; the host runtime watches that page.
const msiBytes = 4

// raiseInterrupt posts the slot's completion signal toward the host.
func (pl *Platform) raiseInterrupt(slot int) {
	if pl.msiBase == 0 {
		panic("tapasco: interrupt raised before a runtime attached")
	}
	pl.Card.Write(pl.msiBase+uint64(slot*msiBytes), msiBytes, le32b(1), nil)
}

// ---- runtime ----

// Runtime is the host-side TaPaSCo runtime: it discovers the composition,
// fields completion interrupts, and launches jobs.
type Runtime struct {
	pl      *Platform
	waiters map[int]*sim.Chan[struct{}]
}

// NewRuntime attaches the runtime: it allocates the MSI page in host
// memory, grants the card access, and installs the interrupt handler.
func NewRuntime(pl *Platform) *Runtime {
	rt := &Runtime{pl: pl, waiters: make(map[int]*sim.Chan[struct{}])}
	if pl.dma != nil {
		// The DMA engine's interrupt vector follows the PE slots.
		pl.dma.slot = len(pl.allSlots)
	}
	pl.msiBase = pl.Host.Alloc(int64(len(pl.allSlots)+1)*msiBytes, 4096)
	pl.Fabric.IOMMU().Grant(pl.cfg.CardName, pl.msiBase, int64(len(pl.allSlots)+1)*msiBytes)
	// The kernel driver pins application buffers; the card may DMA host
	// memory from then on.
	pl.Fabric.IOMMU().Grant(pl.cfg.CardName, pl.cfg.Host.MemBase, pl.cfg.Host.MemSize)
	pl.Host.Mem.Watch(pl.msiBase, int64(len(pl.allSlots)+1)*msiBytes, func(addr uint64, n int64, data []byte) {
		slot := int((addr - pl.msiBase) / msiBytes)
		if ch, ok := rt.waiters[slot]; ok {
			ch.TryPut(struct{}{})
		}
	})
	return rt
}

// SlotCount reports composed slots for a kernel ID.
func (rt *Runtime) SlotCount(kid uint32) int { return len(rt.pl.slots[kid]) }

// Launch runs one job on a free slot of kernel kid, blocking p until the
// PE signals completion, and returns the PE's return value — the model of
// tapasco::launch.
func (rt *Runtime) Launch(p *sim.Proc, kid uint32, args ...uint64) (uint64, error) {
	if len(args) > peMaxArgs {
		return 0, fmt.Errorf("tapasco: %d arguments exceed the register file", len(args))
	}
	slot := rt.acquireSlot(p, kid)
	if slot == nil {
		return 0, fmt.Errorf("tapasco: no PE composed for kernel %d", kid)
	}
	h := rt.pl.Host.Port
	// Program argument registers, enable the interrupt, start.
	for i, a := range args {
		h.WriteB(p, slot.base+peRegArgs+uint64(i*8), 8, le64b(a))
	}
	ch := sim.NewChan[struct{}](rt.pl.K, 1)
	rt.waiters[slot.id] = ch
	h.WriteB(p, slot.base+peRegIER, 4, le32b(1))
	h.WriteB(p, slot.base+peRegCtrl, 4, le32b(1))
	ch.Get(p)
	delete(rt.waiters, slot.id)
	// Read back the return value.
	lo := make([]byte, 4)
	hi := make([]byte, 4)
	h.ReadB(p, slot.base+peRegRetLo, 4, lo)
	h.ReadB(p, slot.base+peRegRetHi, 4, hi)
	rt.releaseSlot(slot)
	return uint64(le32(lo)) | uint64(le32(hi))<<32, nil
}

// acquireSlot finds a free slot of the kernel, waiting if all are busy.
func (rt *Runtime) acquireSlot(p *sim.Proc, kid uint32) *peSlot {
	slots := rt.pl.slots[kid]
	if len(slots) == 0 {
		return nil
	}
	for {
		for _, s := range slots {
			if !s.launchHeld {
				s.launchHeld = true
				return s
			}
		}
		// All held: re-poll after a scheduler tick.
		p.Sleep(sim.Microsecond)
	}
}

func (rt *Runtime) releaseSlot(s *peSlot) { s.launchHeld = false }

package tapasco

import (
	"testing"

	"snacc/internal/sim"
)

// adderPE is a toy kernel: return arg0 + arg1 after a fixed compute time.
func adderPE(latency sim.Time) PE {
	return PEFunc{Label: "adder", Fn: func(p *sim.Proc, args []uint64) uint64 {
		p.Sleep(latency)
		return args[0] + args[1]
	}}
}

func TestPELaunchRoundTrip(t *testing.T) {
	k := sim.NewKernel()
	pl := NewPlatform(k, DefaultU280())
	pl.Compose(11, 1, func(int) PE { return adderPE(5 * sim.Microsecond) })
	rt := NewRuntime(pl)
	var got uint64
	var err error
	k.Spawn("app", func(p *sim.Proc) {
		got, err = rt.Launch(p, 11, 40, 2)
	})
	k.Run(0)
	if err != nil {
		t.Fatalf("launch: %v", err)
	}
	if got != 42 {
		t.Fatalf("PE returned %d, want 42", got)
	}
}

func TestPELaunchConsumesSimTime(t *testing.T) {
	k := sim.NewKernel()
	pl := NewPlatform(k, DefaultU280())
	pl.Compose(11, 1, func(int) PE { return adderPE(100 * sim.Microsecond) })
	rt := NewRuntime(pl)
	var elapsed sim.Time
	k.Spawn("app", func(p *sim.Proc) {
		start := p.Now()
		if _, err := rt.Launch(p, 11, 1, 2); err != nil {
			t.Errorf("%v", err)
		}
		elapsed = p.Now() - start
	})
	k.Run(0)
	if elapsed < 100*sim.Microsecond {
		t.Fatalf("launch took %v, must include the PE's 100us compute", elapsed)
	}
}

func TestPEUnknownKernel(t *testing.T) {
	k := sim.NewKernel()
	pl := NewPlatform(k, DefaultU280())
	rt := NewRuntime(pl)
	var err error
	k.Spawn("app", func(p *sim.Proc) {
		_, err = rt.Launch(p, 99, 1)
	})
	k.Run(0)
	if err == nil {
		t.Fatal("launch of uncomposed kernel succeeded")
	}
}

func TestPEMultiSlotParallelism(t *testing.T) {
	// Two slots of the same kernel must overlap: four 100us jobs on two
	// slots finish in ~200us, not 400us.
	k := sim.NewKernel()
	pl := NewPlatform(k, DefaultU280())
	pl.Compose(7, 2, func(int) PE { return adderPE(100 * sim.Microsecond) })
	rt := NewRuntime(pl)
	if rt.SlotCount(7) != 2 {
		t.Fatalf("SlotCount = %d", rt.SlotCount(7))
	}
	var done sim.Time
	finished := 0
	for j := 0; j < 4; j++ {
		j := j
		k.Spawn("job", func(p *sim.Proc) {
			if _, err := rt.Launch(p, 7, uint64(j), 0); err != nil {
				t.Errorf("%v", err)
			}
			finished++
			if finished == 4 {
				done = p.Now()
			}
		})
	}
	k.Run(0)
	if finished != 4 {
		t.Fatalf("finished = %d", finished)
	}
	if done > 320*sim.Microsecond {
		t.Fatalf("4 jobs on 2 slots took %v; slots did not run in parallel", done)
	}
	if done < 200*sim.Microsecond {
		t.Fatalf("4 jobs took only %v; compute time lost", done)
	}
}

func TestPEConcurrentDifferentKernels(t *testing.T) {
	k := sim.NewKernel()
	pl := NewPlatform(k, DefaultU280())
	pl.Compose(1, 1, func(int) PE { return adderPE(50 * sim.Microsecond) })
	pl.Compose(2, 1, func(int) PE {
		return PEFunc{Label: "mul", Fn: func(p *sim.Proc, args []uint64) uint64 {
			p.Sleep(30 * sim.Microsecond)
			return args[0] * args[1]
		}}
	})
	rt := NewRuntime(pl)
	var sum, prod uint64
	k.Spawn("a", func(p *sim.Proc) { sum, _ = rt.Launch(p, 1, 3, 4) })
	k.Spawn("b", func(p *sim.Proc) { prod, _ = rt.Launch(p, 2, 3, 4) })
	k.Run(0)
	if sum != 7 || prod != 12 {
		t.Fatalf("sum=%d prod=%d", sum, prod)
	}
}

func TestDMAEngineRoundTrip(t *testing.T) {
	k := sim.NewKernel()
	pl := NewPlatform(k, DefaultU280())
	pl.AddDMAEngine()
	rt := NewRuntime(pl)
	hostBuf := pl.Host.Alloc(sim.MiB, 4096)
	var elapsed sim.Time
	k.Spawn("app", func(p *sim.Proc) {
		dev := rt.AllocDevice(sim.MiB)
		start := p.Now()
		rt.CopyToDevice(p, hostBuf, dev, sim.MiB)
		rt.CopyFromDevice(p, hostBuf, dev, sim.MiB)
		elapsed = p.Now() - start
	})
	k.Run(0)
	if pl.dma.Transfers() != 2 || pl.dma.BytesMoved() != 2*sim.MiB {
		t.Fatalf("dma stats: %d transfers, %d bytes", pl.dma.Transfers(), pl.dma.BytesMoved())
	}
	// 2 MiB over a ~15 GB/s link can't finish faster than ~130us.
	if elapsed < 100*sim.Microsecond {
		t.Fatalf("DMA round trip took %v; bus time unaccounted", elapsed)
	}
}

func TestDMAWithPEPipeline(t *testing.T) {
	// The classic TaPaSCo flow: copy in, launch, copy out.
	k := sim.NewKernel()
	pl := NewPlatform(k, DefaultU280())
	pl.AddDMAEngine()
	pl.Compose(5, 1, func(int) PE {
		return PEFunc{Label: "sum", Fn: func(p *sim.Proc, args []uint64) uint64 {
			// Pretend to stream args[1] bytes at the fabric rate.
			p.Sleep(sim.TransferTime(int64(args[1]), 19.2e9))
			return args[0] ^ 0xFF
		}}
	})
	rt := NewRuntime(pl)
	hostBuf := pl.Host.Alloc(256*sim.KiB, 4096)
	var ret uint64
	k.Spawn("app", func(p *sim.Proc) {
		dev := rt.AllocDevice(256 * sim.KiB)
		rt.CopyToDevice(p, hostBuf, dev, 256*sim.KiB)
		r, err := rt.Launch(p, 5, dev, uint64(256*sim.KiB))
		if err != nil {
			t.Errorf("%v", err)
		}
		ret = r
		rt.CopyFromDevice(p, hostBuf, dev, 256*sim.KiB)
	})
	k.Run(0)
	if ret == 0 {
		t.Fatal("PE return value lost")
	}
}

func TestPEArgRegisterLimit(t *testing.T) {
	k := sim.NewKernel()
	pl := NewPlatform(k, DefaultU280())
	pl.Compose(3, 1, func(int) PE { return adderPE(0) })
	rt := NewRuntime(pl)
	var err error
	k.Spawn("app", func(p *sim.Proc) {
		args := make([]uint64, peMaxArgs+1)
		_, err = rt.Launch(p, 3, args...)
	})
	k.Run(0)
	if err == nil {
		t.Fatal("launch with too many arguments succeeded")
	}
}

// TestDMARawRegisterInterface drives the engine exactly like a host driver:
// descriptor registers written over PCIe, start bit, then busy-polling the
// control register until the transfer completes.
func TestDMARawRegisterInterface(t *testing.T) {
	k := sim.NewKernel()
	pl := NewPlatform(k, DefaultU280())
	e := pl.AddDMAEngine()
	NewRuntime(pl)
	host := pl.Host
	src := host.Alloc(64*sim.KiB, 4096)
	completed := false
	k.Spawn("driver", func(p *sim.Proc) {
		w32 := func(off uint64, v uint32) {
			host.Port.WriteB(p, e.base+off, 4, []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
		}
		w32(dmaRegHostLo, uint32(src))
		w32(dmaRegHostHi, uint32(src>>32))
		w32(dmaRegDevLo, 0)
		w32(dmaRegDevHi, 0)
		w32(dmaRegLenLo, 64*1024)
		w32(dmaRegLenHi, 0)
		w32(dmaRegCtrl, 1) // start, host -> card
		// Busy-poll the control register like tlkm does.
		buf := make([]byte, 4)
		for {
			host.Port.ReadB(p, e.base+dmaRegCtrl, 4, buf)
			if buf[0]&1 == 0 {
				break
			}
			p.Sleep(5 * sim.Microsecond)
		}
		completed = true
	})
	k.Run(0)
	if !completed {
		t.Fatal("poll loop never observed completion")
	}
	if e.Transfers() != 1 || e.BytesMoved() != 64*1024 {
		t.Fatalf("engine stats: %d transfers / %d bytes", e.Transfers(), e.BytesMoved())
	}
}

func TestDMADoubleStartPanics(t *testing.T) {
	k := sim.NewKernel()
	pl := NewPlatform(k, DefaultU280())
	e := pl.AddDMAEngine()
	NewRuntime(pl)
	defer func() {
		if recover() == nil {
			t.Error("second start while busy accepted")
		}
	}()
	regs := (*dmaRegs)(e)
	regs.CompleteWrite(e.base+dmaRegLenLo, 4, []byte{0, 16, 0, 0})
	regs.CompleteWrite(e.base+dmaRegCtrl, 4, []byte{1, 0, 0, 0})
	regs.CompleteWrite(e.base+dmaRegCtrl, 4, []byte{1, 0, 0, 0})
}

func TestPlatformConfigAccessor(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultXUPVVH()
	pl := NewPlatform(k, cfg)
	if pl.Config().CardName != cfg.CardName {
		t.Fatal("Config accessor returned wrong config")
	}
}

GO ?= go

.PHONY: build test race vet bench bench-smoke cover latency faults crash queues perfreport kernel tenants cluster serve

build:
	$(GO) build ./...

# The default test path vets first and includes the targeted race pass, so
# `make test` alone gives the full tier-1 signal.
test: vet
	$(GO) test ./...
	$(MAKE) race
	$(MAKE) bench-smoke

# Race-checks the worker pool, the kernel/buffer-pool hot paths it drives,
# and the fault-injection/recovery machinery (including the controller
# crash-recovery ladder and its multi-queue/ring-wrap variants).
race:
	$(GO) test -race ./internal/parallel/... ./internal/sim/... ./internal/bufpool/... ./internal/fault/... ./internal/obs/... ./internal/ethernet/... ./internal/serve/... ./internal/workload/...
	$(GO) test -race -run 'Fault|Retry|Timeout|CQE|Crash|Breaker|Death|CFS|Degraded|Span|Wrap|MultiQueue|Tenant' ./internal/streamer/
	$(GO) test -race -run 'KernelWorkers' ./internal/casestudy/ .
	$(GO) test -race -run 'TestParallelDeterminism|TestKernelSweep' ./internal/bench/
	$(GO) test -race ./internal/cluster/
	$(GO) test -race -run 'TestClusterRandomizedDataIntegrity' .

vet:
	$(GO) vet ./...

# Per-package statement coverage, with a ratchet on the packages whose test
# suites this repo leans on hardest: the span tracer, the trace parser, and
# the experiment engine. Raise a floor when its package's coverage rises;
# never lower one to make a change fit.
cover:
	$(GO) test -cover ./... > cover.txt || { cat cover.txt; rm -f cover.txt; exit 1; }
	@cat cover.txt
	@awk '{ pct = $$5; sub(/%/, "", pct) } \
		$$2 == "snacc/internal/obs"      && pct + 0 < 88 { bad = bad "  " $$2 ": " pct "% < 88%\n" } \
		$$2 == "snacc/internal/sim"      && pct + 0 < 90 { bad = bad "  " $$2 ": " pct "% < 90%\n" } \
		$$2 == "snacc/internal/workload" && pct + 0 < 88 { bad = bad "  " $$2 ": " pct "% < 88%\n" } \
		$$2 == "snacc/internal/serve"    && pct + 0 < 85 { bad = bad "  " $$2 ": " pct "% < 85%\n" } \
		$$2 == "snacc/internal/bench"    && pct + 0 < 86 { bad = bad "  " $$2 ": " pct "% < 86%\n" } \
		$$2 == "snacc/internal/streamer" && pct + 0 < 88 { bad = bad "  " $$2 ": " pct "% < 88%\n" } \
		$$2 == "snacc/internal/cluster"  && pct + 0 < 85 { bad = bad "  " $$2 ": " pct "% < 85%\n" } \
		END { if (bad != "") { printf "coverage ratchet failed:\n%s", bad; exit 1 } }' cover.txt
	@rm -f cover.txt

# Per-stage latency percentiles from span tracing -> BENCH_latency.json
latency:
	$(GO) run ./cmd/snaccbench -latency

# Microbenchmarks: kernel scheduling (events/sec, allocs/op) and end-to-end
# streamer reads (4 KiB and 1 MiB).
bench:
	$(GO) test -run XXX -bench BenchmarkKernel -benchmem ./internal/sim/
	$(GO) test -run XXX -bench BenchmarkStreamerRead -benchmem ./internal/bench/

# One-iteration pass over the kernel micro-benchmarks under the race
# detector: catches data races and bit-rot on the sharded hot paths without
# the cost of a real measurement run. BenchmarkShardedRing runs the 4-domain
# rig at workers 1, 2, and 4 and cross-checks every iteration's per-domain
# digests against a serial reference, so this pass is also a determinism
# check on the concurrent round loop. Wired into `make test`.
bench-smoke: vet
	$(GO) test -race -run XXX -bench 'BenchmarkKernel|BenchmarkSharded' -benchtime 1x -benchmem ./internal/sim/

# Sharded-kernel worker sweep (events/s, determinism digests) -> BENCH_kernel.json
# The ceiling test first: rounds-per-event on the ring rig must stay below
# the pinned bound, so a regression in the per-domain safe-time sync fails
# here instead of silently inflating the sweep's round counts.
kernel:
	$(GO) test -run 'TestShardRingRoundsCeiling' ./internal/sim/
	$(GO) run ./cmd/snaccbench -kernelworkers 1,2,4

# Fault-injection suite: recovery unit tests, accounting invariants, and the
# goodput-vs-error-rate sweep.
faults:
	$(GO) test -run 'Fault|Retry|Timeout|CQE|InvalidCompletion' ./internal/fault/ ./internal/streamer/ ./internal/bench/ .
	$(GO) run ./cmd/snaccbench -faults

# Controller-crash suite: recovery-ladder unit tests (breaker, reset,
# replay, degraded striping, crash data integrity) and the goodput/MTTR
# sweep -> BENCH_crash.json
crash:
	$(GO) test -run 'Crash|Breaker|Death|CFS|Degraded|Removal' ./internal/nvme/ ./internal/streamer/ ./internal/bench/ .
	$(GO) run ./cmd/snaccbench -crash

# Multi-queue submission suite: ring-wrap and crash/integrity tests at
# IOQueues > 1, then the IOPS-vs-queues×batch sweep -> BENCH_queues.json
queues:
	$(GO) test -run 'Wrap|MultiQueue|RandomizedDataIntegrity' ./internal/streamer/ .
	$(GO) run ./cmd/snaccbench -queues 1,2,4,8

# Multi-tenant QoS suite: hub scheduling/isolation unit tests plus the
# noisy-neighbor sweep (victim vs aggressor, DRR vs FIFO) -> BENCH_tenants.json
tenants:
	$(GO) test -run 'Tenant' ./internal/streamer/ ./internal/bench/ .
	$(GO) run ./cmd/snaccbench -tenants

# Serving-tier suite: frame-codec/conn-table/backpressure unit tests (the
# invariant test also runs under -race via the race target), the open-loop
# workload generator, and the client-population sweep -> BENCH_serve.json
serve:
	$(GO) test ./internal/serve/ ./internal/workload/
	$(GO) test -run 'TestServe' ./internal/bench/ .
	$(GO) run ./cmd/snaccbench -serve

# Replicated-cluster suite: failover/re-replication/rejoin unit tests, the
# kill-a-node data-integrity property, and the nodes×R×quorum sweep plus
# availability timeline -> BENCH_cluster.json
cluster:
	$(GO) test ./internal/cluster/
	$(GO) test -run 'TestClusterRandomizedDataIntegrity' .
	$(GO) run ./cmd/snaccbench -cluster

# Serial-vs-parallel suite wall time + kernel throughput -> BENCH_parallel.json
perfreport:
	$(GO) run ./cmd/snaccbench -perfreport

GO ?= go

.PHONY: build test race vet bench perfreport

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-checks the worker pool and the kernel/buffer-pool hot paths it drives.
race:
	$(GO) test -race ./internal/parallel/... ./internal/sim/... ./internal/bufpool/...
	$(GO) test -race -run TestParallelDeterminism ./internal/bench/

vet:
	$(GO) vet ./...

# Microbenchmarks: kernel scheduling (events/sec, allocs/op) and end-to-end
# streamer reads (4 KiB and 1 MiB).
bench:
	$(GO) test -run XXX -bench BenchmarkKernel -benchmem ./internal/sim/
	$(GO) test -run XXX -bench BenchmarkStreamerRead -benchmem ./internal/bench/

# Serial-vs-parallel suite wall time + kernel throughput -> BENCH_parallel.json
perfreport:
	$(GO) run ./cmd/snaccbench -perfreport

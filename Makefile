GO ?= go

.PHONY: build test race vet bench faults crash perfreport

build:
	$(GO) build ./...

# The default test path vets first and includes the targeted race pass, so
# `make test` alone gives the full tier-1 signal.
test: vet
	$(GO) test ./...
	$(MAKE) race

# Race-checks the worker pool, the kernel/buffer-pool hot paths it drives,
# and the fault-injection/recovery machinery (including the controller
# crash-recovery ladder).
race:
	$(GO) test -race ./internal/parallel/... ./internal/sim/... ./internal/bufpool/... ./internal/fault/...
	$(GO) test -race -run 'Fault|Retry|Timeout|CQE|Crash|Breaker|Death|CFS|Degraded' ./internal/streamer/
	$(GO) test -race -run TestParallelDeterminism ./internal/bench/

vet:
	$(GO) vet ./...

# Microbenchmarks: kernel scheduling (events/sec, allocs/op) and end-to-end
# streamer reads (4 KiB and 1 MiB).
bench:
	$(GO) test -run XXX -bench BenchmarkKernel -benchmem ./internal/sim/
	$(GO) test -run XXX -bench BenchmarkStreamerRead -benchmem ./internal/bench/

# Fault-injection suite: recovery unit tests, accounting invariants, and the
# goodput-vs-error-rate sweep.
faults:
	$(GO) test -run 'Fault|Retry|Timeout|CQE|InvalidCompletion' ./internal/fault/ ./internal/streamer/ ./internal/bench/ .
	$(GO) run ./cmd/snaccbench -faults

# Controller-crash suite: recovery-ladder unit tests (breaker, reset,
# replay, degraded striping, crash data integrity) and the goodput/MTTR
# sweep -> BENCH_crash.json
crash:
	$(GO) test -run 'Crash|Breaker|Death|CFS|Degraded|Removal' ./internal/nvme/ ./internal/streamer/ ./internal/bench/ .
	$(GO) run ./cmd/snaccbench -crash

# Serial-vs-parallel suite wall time + kernel throughput -> BENCH_parallel.json
perfreport:
	$(GO) run ./cmd/snaccbench -perfreport

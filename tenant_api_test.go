package snacc

import (
	"bytes"
	"strings"
	"testing"

	"snacc/internal/sim"
)

// twoTenantOpts builds a system with two equal-weight tenants on adjacent
// 64 MiB windows.
func twoTenantOpts() Options {
	return Options{Tenants: []TenantConfig{
		{Name: "a", Weight: 1, LBAStart: 0, LBABytes: 64 * sim.MiB},
		{Name: "b", Weight: 2, LBAStart: uint64(64 * sim.MiB), LBABytes: 64 * sim.MiB},
	}}
}

func TestTenantFacadeRoundTrip(t *testing.T) {
	sys := MustNewSystem(twoTenantOpts())
	block := func(tag byte) []byte {
		b := make([]byte, 8192)
		for i := range b {
			b[i] = tag ^ byte(i%251)
		}
		return b
	}
	a, b := block(0xA5), block(0x5A)
	sys.Execute(func(h *Handle) {
		// Both tenants write to the SAME tenant-relative address; the hub's
		// window translation must keep them on disjoint device ranges.
		if err := h.TenantWrite(0, 4096, a); err != nil {
			t.Errorf("tenant 0 write: %v", err)
		}
		if err := h.TenantWrite(1, 4096, b); err != nil {
			t.Errorf("tenant 1 write: %v", err)
		}
		got, err := h.TenantRead(0, 4096, int64(len(a)))
		if err != nil || !bytes.Equal(got, a) {
			t.Errorf("tenant 0 read back wrong data (err=%v)", err)
		}
		got, err = h.TenantRead(1, 4096, int64(len(b)))
		if err != nil || !bytes.Equal(got, b) {
			t.Errorf("tenant 1 read back wrong data (err=%v)", err)
		}
	})
	st := sys.Stats()
	if len(st.Tenants) != 2 {
		t.Fatalf("Stats.Tenants has %d entries, want 2", len(st.Tenants))
	}
	if st.Tenants[0].Name != "a" || st.Tenants[1].Name != "b" {
		t.Errorf("tenant names = %q, %q", st.Tenants[0].Name, st.Tenants[1].Name)
	}
	var wr, rd int64
	for _, ts := range st.Tenants {
		wr += ts.BytesWritten
		rd += ts.BytesRead
	}
	if wr != st.BytesFromPE || rd != st.BytesToPE {
		t.Errorf("tenant byte sums (w=%d r=%d) != global (w=%d r=%d)",
			wr, rd, st.BytesFromPE, st.BytesToPE)
	}
	lat := sys.TenantReadLatency(0)
	if lat.Count() == 0 {
		t.Error("tenant 0 read-latency histogram empty")
	}
}

func TestTenantFacadeWindowRejection(t *testing.T) {
	sys := MustNewSystem(twoTenantOpts())
	sys.Execute(func(h *Handle) {
		if err := h.TenantWriteTimed(0, uint64(64*sim.MiB), 4096); err == nil {
			t.Error("out-of-window write not rejected")
		}
		if _, err := h.TenantRead(1, uint64(60*sim.MiB), 8*sim.MiB); err == nil {
			t.Error("window-overrunning read not rejected")
		}
	})
	st := sys.Stats()
	if st.Tenants[0].Rejected != 1 || st.Tenants[1].Rejected != 1 {
		t.Errorf("rejected = %d, %d — want 1 each",
			st.Tenants[0].Rejected, st.Tenants[1].Rejected)
	}
	if st.CommandsSubmitted != 0 {
		t.Errorf("rejected commands reached the device: %d submitted", st.CommandsSubmitted)
	}
}

func TestTenantFacadeGuards(t *testing.T) {
	mustPanic := func(name, want string, fn func()) {
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("%s did not panic", name)
				return
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
				t.Errorf("%s panicked with %v, want substring %q", name, r, want)
			}
		}()
		fn()
	}
	virt := MustNewSystem(twoTenantOpts())
	virt.Execute(func(h *Handle) {
		mustPanic("raw Read on virtualized system", "virtualized", func() { h.Read(0, 512) })
		mustPanic("out-of-range tenant", "out of range", func() { h.TenantRead(5, 0, 512) })
	})
	plain := MustNewSystem(Options{})
	plain.Execute(func(h *Handle) {
		mustPanic("TenantRead without tenants", "no tenants", func() { h.TenantRead(0, 0, 512) })
	})
	if got := plain.TenantStats(); got != nil {
		t.Errorf("TenantStats without tenants = %v, want nil", got)
	}
}

func TestTenantFacadeBadConfig(t *testing.T) {
	_, err := NewSystem(Options{Tenants: []TenantConfig{
		{Name: "a", LBAStart: 0, LBABytes: 2 * sim.MiB},
		{Name: "b", LBAStart: uint64(sim.MiB), LBABytes: 2 * sim.MiB}, // overlaps a
	}})
	if err == nil {
		t.Fatal("overlapping tenant windows accepted")
	}
}

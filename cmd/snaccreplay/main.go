// Command snaccreplay replays a block I/O trace through the simulated
// SNAcc stack and reports throughput and operation rate per Streamer
// variant — the tool a downstream user reaches for to ask "what would my
// application's capture do on this accelerator?".
//
// Trace format (stdin or -trace file): one operation per line,
//
//	R <offset> <length> [gap-µs]
//	W <offset> <length> [gap-µs]
//
// with '#' comments and K/M/G binary suffixes. Without -trace, a synthetic
// workload is generated from the -pattern/-read/-io/-total flags and can be
// exported with -dump for later replay.
//
// Usage:
//
//	snaccreplay -trace capture.txt -variant uram
//	snaccreplay -pattern zipfian -read 0.9 -total 64 -dump capture.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"snacc"
)

func main() {
	tracePath := flag.String("trace", "", "trace file to replay (default: generate synthetically)")
	variant := flag.String("variant", "all", "streamer variant: uram, obdram, hostdram, or all")
	pattern := flag.String("pattern", "random", "synthetic pattern: sequential, random, zipfian")
	readFrac := flag.Float64("read", 0.7, "synthetic read fraction [0,1]")
	ioKiB := flag.Int64("io", 4, "synthetic operation size (KiB)")
	totalMiB := flag.Int64("total", 32, "synthetic total volume (MiB)")
	seed := flag.Uint64("seed", 1, "synthetic generator seed")
	dump := flag.String("dump", "", "write the trace to this file instead of replaying")
	flag.Parse()

	ops, name, err := loadOps(*tracePath, *pattern, *readFrac, *ioKiB, *totalMiB, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := snacc.FormatTrace(f, ops); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d operations to %s\n", len(ops), *dump)
		return
	}

	variants, err := pickVariants(*variant)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fmt.Printf("replaying %q: %d operations\n\n", name, len(ops))
	fmt.Printf("%-16s%12s%14s%12s%12s\n", "variant", "GB/s", "IOPS", "reads", "writes")
	functional := false
	for _, v := range variants {
		sys := snacc.MustNewSystem(snacc.Options{Variant: v, Functional: &functional})
		res, err := sys.ReplayTrace(name, ops)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", v, err)
			os.Exit(1)
		}
		fmt.Printf("%-16s%12.2f%14.0f%12d%12d\n", v.String(), res.GBps(), res.IOPS(), res.Reads, res.Writes)
	}
}

func loadOps(path, pattern string, readFrac float64, ioKiB, totalMiB int64, seed uint64) ([]snacc.TraceOp, string, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		ops, err := snacc.ParseTrace(f)
		if err != nil {
			return nil, "", err
		}
		if len(ops) == 0 {
			return nil, "", fmt.Errorf("trace %s holds no operations", path)
		}
		return ops, path, nil
	}
	var pat snacc.WorkloadPattern
	switch pattern {
	case "sequential":
		pat = snacc.SequentialPattern
	case "random":
		pat = snacc.RandomPattern
	case "zipfian":
		pat = snacc.ZipfianPattern
	default:
		return nil, "", fmt.Errorf("unknown pattern %q", pattern)
	}
	spec := snacc.WorkloadSpec{
		Name:         pattern,
		Pattern:      pat,
		ReadFraction: readFrac,
		IOBytes:      ioKiB << 10,
		SpanBytes:    1 << 30,
		TotalBytes:   totalMiB << 20,
		ZipfTheta:    0.99,
		ZipfBuckets:  128,
		Seed:         seed,
	}
	ops, err := snacc.RecordTrace(spec)
	return ops, pattern, err
}

func pickVariants(s string) ([]snacc.Variant, error) {
	switch s {
	case "uram":
		return []snacc.Variant{snacc.URAM}, nil
	case "obdram":
		return []snacc.Variant{snacc.OnboardDRAM}, nil
	case "hostdram":
		return []snacc.Variant{snacc.HostDRAM}, nil
	case "all":
		return []snacc.Variant{snacc.URAM, snacc.OnboardDRAM, snacc.HostDRAM}, nil
	}
	return nil, fmt.Errorf("unknown variant %q", s)
}

// Command snaccbench regenerates the tables and figures of the SNAcc paper
// (§5 evaluation, §6 case study) and the §7 ablations from the simulation.
//
// Usage:
//
//	snaccbench -fig 4a            # sequential NVMe bandwidth
//	snaccbench -fig 4b            # random 4 KiB bandwidth
//	snaccbench -fig 4c            # 4 KiB latency
//	snaccbench -table 1           # FPGA resource utilization
//	snaccbench -fig 6 -images 512 # case-study bandwidth
//	snaccbench -fig 7             # case-study PCIe traffic
//	snaccbench -ablation qd|ooo|multissd|gen5|dram
//	snaccbench -faults            # fault-injection sweep (goodput vs error rate)
//	snaccbench -crash             # controller-crash sweep (goodput + MTTR vs crash rate)
//	snaccbench -latency           # per-stage latency percentiles from span tracing
//	snaccbench -queues 1,2,4,8    # multi-queue submission sweep, write BENCH_queues.json
//	snaccbench -kernelworkers 1,2,4 # sharded-kernel worker sweep, write BENCH_kernel.json
//	snaccbench -tenants           # multi-tenant QoS sweep, write BENCH_tenants.json
//	snaccbench -serve             # open-loop serving sweep (10k/100k/1M clients), write BENCH_serve.json
//	snaccbench -serve -clients 50000 -phases 1:200,8:25  # custom population and burst schedule
//	snaccbench -cluster           # replicated-cluster sweep + availability timeline, write BENCH_cluster.json
//	snaccbench -cluster -nodes 4 -replication 3 -quorum 2  # one custom cluster shape
//	snaccbench -all               # everything
//	snaccbench -all -j 8          # shard independent rigs over 8 workers
//	snaccbench -perfreport        # write BENCH_parallel.json
//
// -size scales the per-measurement transfer volume (MiB). Absolute numbers
// are calibrated against the paper's testbed; see EXPERIMENTS.md.
//
// -j selects how many worker goroutines independent simulation rigs are
// sharded across (default: all CPUs). Every rig owns a private simulation
// kernel with fixed seeds and rows are collected by index, so the output is
// bit-identical at any -j value.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"snacc/internal/bench"
	"snacc/internal/sim"
	"snacc/internal/streamer"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate: 4a, 4b, 4c, 6, 7")
	table := flag.String("table", "", "table to regenerate: 1")
	ablation := flag.String("ablation", "", "ablation to run: qd, ooo, multissd, gen5, dram, hbm, stripedcase, mtu, qp")
	all := flag.Bool("all", false, "regenerate everything")
	sizeMiB := flag.Int64("size", 256, "transfer volume per bandwidth measurement (MiB)")
	images := flag.Int("images", 192, "case-study stream length (paper: 16384)")
	samples := flag.Int("samples", 200, "latency samples for figure 4c")
	csv := flag.Bool("csv", false, "emit tables as CSV instead of aligned text")
	jsonOut := flag.Bool("json", false, "emit tables as JSON instead of aligned text")
	sweep := flag.Bool("sweep", false, "run the transfer-size convergence sweep")
	timeline := flag.Bool("timeline", false, "sample write bandwidth over time (shows banding epochs)")
	jobs := flag.Int("j", runtime.NumCPU(), "worker goroutines for independent experiment rigs (output is identical at any value)")
	perfreport := flag.Bool("perfreport", false, "measure serial vs parallel suite wall time and kernel throughput, write BENCH_parallel.json")
	faults := flag.Bool("faults", false, "run the NVMe fault-injection sweep (goodput and retry amplification vs error rate)")
	crash := flag.Bool("crash", false, "run the controller-crash sweep (goodput and MTTR vs crash rate), write BENCH_crash.json")
	latency := flag.Bool("latency", false, "run the latency-breakdown rig (per-stage latency percentiles from span tracing), write BENCH_latency.json")
	queuesArg := flag.String("queues", "", "comma-separated I/O queue counts for the multi-queue submission sweep (each 1..8), write BENCH_queues.json")
	kwArg := flag.String("kernelworkers", "", "comma-separated worker counts for the sharded-kernel sweep (results identical at any count), write BENCH_kernel.json")
	tenants := flag.Bool("tenants", false, "run the multi-tenant QoS sweep (victim vs noisy neighbor, DRR vs FIFO), write BENCH_tenants.json")
	serveRun := flag.Bool("serve", false, "run the open-loop serving sweep (RPC fleet over 100G, pause/shed backpressure), write BENCH_serve.json")
	serveClients := flag.String("clients", "", "with -serve: comma-separated client populations (default 10000,100000,1000000)")
	servePhases := flag.String("phases", "", "with -serve: burst schedule as scale:µs pairs, e.g. 1:200,6:50")
	clusterRun := flag.Bool("cluster", false, "run the replicated-cluster sweep (node kill, failover, re-replication) and availability timeline, write BENCH_cluster.json")
	clusterNodes := flag.Int("nodes", 0, "with -cluster: run a single nodes/replication/quorum shape instead of the default grid")
	clusterRepl := flag.Int("replication", 0, "with -cluster -nodes: replica count per chunk")
	clusterQuorum := flag.Int("quorum", 0, "with -cluster -nodes: write acknowledgements required before completion")
	flag.Parse()

	// Flag validation mirrors snacctrace: a value outside the known set is a
	// usage error (exit 2), not a silent no-op run.
	fail := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", a...)
		os.Exit(2)
	}
	if *jobs < 1 {
		fail("invalid -j %d (want >= 1)", *jobs)
	}
	// Scale flags feed transfer sizes and loop bounds directly; zero or
	// negative values would silently produce empty tables (or spin), so they
	// are usage errors too.
	if *sizeMiB < 1 {
		fail("invalid -size %d (want MiB >= 1)", *sizeMiB)
	}
	if *images < 1 {
		fail("invalid -images %d (want >= 1)", *images)
	}
	if *samples < 1 {
		fail("invalid -samples %d (want >= 1)", *samples)
	}
	switch *fig {
	case "", "4a", "4b", "4c", "6", "7":
	default:
		fail("unknown figure %q (want 4a, 4b, 4c, 6, or 7)", *fig)
	}
	switch *table {
	case "", "1":
	default:
		fail("unknown table %q (want 1)", *table)
	}
	switch *ablation {
	case "", "qd", "ooo", "multissd", "gen5", "dram", "hbm", "stripedcase", "mtu", "qp":
	default:
		fail("unknown ablation %q (want qd, ooo, multissd, gen5, dram, hbm, stripedcase, mtu, or qp)", *ablation)
	}
	var queueCounts []int
	if *queuesArg != "" {
		for _, part := range strings.Split(*queuesArg, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 || n > streamer.MaxIOQueues {
				fail("invalid -queues entry %q (want integers 1..%d)", part, streamer.MaxIOQueues)
			}
			queueCounts = append(queueCounts, n)
		}
	}
	var kwCounts []int
	if *kwArg != "" {
		for _, part := range strings.Split(*kwArg, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 || n > 64 {
				fail("invalid -kernelworkers entry %q (want integers 1..64)", part)
			}
			kwCounts = append(kwCounts, n)
		}
	}

	// Serving-sweep shape: both flags are strictly validated up front so a
	// typo is a usage error, not a silently defaulted run.
	if (*serveClients != "" || *servePhases != "") && !*serveRun {
		fail("-clients/-phases require -serve")
	}
	serveClientList := bench.DefaultServeClients
	if *serveClients != "" {
		var err error
		if serveClientList, err = bench.ParseServeClients(*serveClients); err != nil {
			fail("%v", err)
		}
	}
	servePhaseList, err := bench.ParseServePhases(*servePhases)
	if err != nil {
		fail("%v", err)
	}

	// A custom cluster shape must be a valid replication arrangement:
	// at least two nodes, and 1 <= quorum <= replication <= nodes.
	clusterGrid := [][3]int{{3, 2, 1}, {3, 2, 2}, {3, 3, 2}, {4, 2, 1}, {4, 3, 2}, {5, 3, 2}}
	if *clusterNodes != 0 || *clusterRepl != 0 || *clusterQuorum != 0 {
		if !*clusterRun {
			fail("-nodes/-replication/-quorum require -cluster")
		}
		n, r, q := *clusterNodes, *clusterRepl, *clusterQuorum
		if n < 2 {
			fail("invalid -nodes %d (want >= 2)", n)
		}
		if r < 1 || r > n {
			fail("invalid -replication %d (want 1 <= replication <= nodes=%d)", r, n)
		}
		if q < 1 || q > r {
			fail("invalid -quorum %d (want 1 <= quorum <= replication=%d)", q, r)
		}
		clusterGrid = [][3]int{{n, r, q}}
	}

	bench.SetParallelism(*jobs)
	size := *sizeMiB * sim.MiB
	ran := false
	show := func(t bench.Table) {
		switch {
		case *csv:
			fmt.Print(t.CSV())
		case *jsonOut:
			fmt.Println(t.JSON())
		default:
			fmt.Println(t)
		}
	}
	run := func(name string, fn func()) {
		ran = true
		fmt.Printf("running %s ...\n", name)
		fn()
	}

	if *all || *fig == "4a" {
		run("figure 4a", func() { show(bench.RenderFig4a(bench.Fig4a(size))) })
	}
	if *all || *fig == "4b" {
		run("figure 4b", func() { show(bench.RenderFig4b(bench.Fig4b(size / 4))) })
	}
	if *all || *fig == "4c" {
		run("figure 4c", func() { show(bench.RenderFig4c(bench.Fig4c(*samples))) })
	}
	if *all || *table == "1" {
		run("table 1", func() { show(bench.RenderTable1(bench.Table1())) })
	}
	if *all || *fig == "6" || *fig == "7" {
		run("figures 6 and 7 (shared case-study runs)", func() {
			rows := bench.Fig6(*images)
			show(bench.RenderFig6(rows))
			show(bench.RenderFig7(rows))
		})
	}
	if *all || *ablation == "qd" {
		run("ablation A1 (queue depth)", func() {
			show(bench.RenderAblationQD(bench.AblationQD([]int{4, 16, 64, 256}, size/8)))
		})
	}
	if *all || *ablation == "ooo" {
		run("ablation A2 (out-of-order retirement)", func() {
			show(bench.RenderAblationOOO(bench.AblationOOO(size / 8)))
		})
	}
	if *all || *ablation == "multissd" {
		run("ablation A3 (multi-SSD)", func() {
			show(bench.RenderAblationMultiSSD(bench.AblationMultiSSD([]int{1, 2, 4}, size/2)))
		})
	}
	if *all || *ablation == "gen5" {
		run("ablation A4 (PCIe 5.0)", func() {
			show(bench.RenderAblationGen5(bench.AblationGen5(size)))
		})
	}
	if *all || *ablation == "hbm" {
		run("ablation A6 (HBM staging)", func() {
			show(bench.RenderAblationHBM(bench.AblationHBM(size)))
		})
	}
	if *all || *ablation == "stripedcase" {
		run("ablation A7 (striped multi-SSD case study)", func() {
			show(bench.RenderFig6Striped(bench.Fig6Striped([]int{1, 2, 3}, *images)))
		})
	}
	if *all || *ablation == "dram" {
		run("ablation A5 (DRAM controller)", func() {
			show(bench.RenderAblationDRAM(bench.AblationDRAM(size)))
		})
	}
	if *all || *ablation == "qp" {
		run("ablation A9 (queue pairs on one SSD)", func() {
			show(bench.RenderAblationQP(bench.AblationQP([]int{1, 2, 4}, size/8)))
		})
	}
	if *all || *ablation == "mtu" {
		run("ablation A8 (Ethernet MTU)", func() {
			show(bench.RenderAblationMTU(bench.AblationMTU([]int64{1500, 4096, 9000}, *images)))
		})
	}

	if *all || *faults {
		run("fault-injection sweep", func() {
			show(bench.RenderFaultSweep(bench.FaultSweep([]float64{0, 0.1, 1, 5}, size)))
		})
	}
	if *all || *crash {
		run("controller-crash sweep", func() {
			table := bench.RenderCrashSweep(bench.CrashSweep([]int64{0, 64, 16, 4}, size))
			show(table)
			if *crash {
				pts := bench.CrashTimeline(16, size/4, 2*sim.Millisecond)
				fmt.Println(bench.RenderTimeline("URAM, crash every 16 commands", pts, 8))
				if err := os.WriteFile("BENCH_crash.json", []byte(table.JSON()+"\n"), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				fmt.Println("wrote BENCH_crash.json")
			}
		})
	}
	if *all || *queuesArg != "" {
		run("multi-queue submission sweep", func() {
			counts := queueCounts
			if len(counts) == 0 {
				counts = []int{1, 2, 4, 8}
			}
			table := bench.RenderQueueSweep(bench.QueueSweep(counts, []int{1, 8}, size/4))
			show(table)
			if *queuesArg != "" {
				if err := os.WriteFile("BENCH_queues.json", []byte(table.JSON()+"\n"), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				fmt.Println("wrote BENCH_queues.json")
			}
		})
	}
	if *all || *kwArg != "" {
		run("sharded-kernel worker sweep", func() {
			counts := kwCounts
			if len(counts) == 0 {
				counts = []int{1, 2, 4}
			}
			rep := bench.KernelSweep(counts, 0)
			show(bench.RenderKernelSweep(rep))
			if *kwArg != "" {
				if err := os.WriteFile("BENCH_kernel.json", []byte(rep.JSON()+"\n"), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				fmt.Println("wrote BENCH_kernel.json")
			}
		})
	}
	if *all || *tenants {
		run("multi-tenant QoS sweep", func() {
			table := bench.RenderTenantSweep(bench.TenantSweep(0, 0))
			show(table)
			if *tenants {
				if err := os.WriteFile("BENCH_tenants.json", []byte(table.JSON()+"\n"), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				fmt.Println("wrote BENCH_tenants.json")
			}
		})
	}
	if *all || *serveRun {
		run("open-loop serving sweep", func() {
			table := bench.RenderServeSweep(bench.ServeSweep(serveClientList, 0, servePhaseList))
			show(table)
			if *serveRun {
				if err := os.WriteFile("BENCH_serve.json", []byte(table.JSON()+"\n"), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				fmt.Println("wrote BENCH_serve.json")
			}
		})
	}
	if *all || *clusterRun {
		run("replicated-cluster sweep", func() {
			table := bench.RenderClusterSweep(bench.ClusterSweep(clusterGrid, size/32))
			show(table)
			if *clusterRun {
				pts, st := bench.ClusterTimeline(24*sim.Millisecond, 2*sim.Millisecond)
				fmt.Println(bench.RenderTimeline("3-node R=2 cluster, node 1 partitioned for a quarter of the run", pts, 8))
				show(bench.RenderClusterRecovery(st))
				if err := os.WriteFile("BENCH_cluster.json", []byte(table.JSON()+"\n"), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				fmt.Println("wrote BENCH_cluster.json")
			}
		})
	}
	if *all || *latency {
		run("latency breakdown", func() {
			table := bench.RenderLatencyBreakdown(bench.LatencyBreakdown(size / 4))
			show(table)
			if *latency {
				if err := os.WriteFile("BENCH_latency.json", []byte(table.JSON()+"\n"), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				fmt.Println("wrote BENCH_latency.json")
			}
		})
	}
	if flagTimeline := *timeline; flagTimeline {
		run("bandwidth timeline", func() {
			pts := bench.Timeline(0, size, 2*sim.Millisecond)
			fmt.Println(bench.RenderTimeline("URAM", pts, 8))
		})
	}
	if *sweep {
		run("transfer-size sweep", func() {
			sizes := []int64{32 * sim.MiB, 64 * sim.MiB, 128 * sim.MiB, 256 * sim.MiB, 512 * sim.MiB}
			rows := bench.SweepTransferSize(0, sizes)
			show(bench.RenderSweep("URAM", rows))
		})
	}
	if *perfreport {
		run("perf report (serial vs parallel)", func() {
			rep := bench.MeasurePerf(*jobs)
			doc := rep.JSON()
			if err := os.WriteFile("BENCH_parallel.json", []byte(doc+"\n"), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println(doc)
		})
	}

	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestServeFlagValidation re-runs the test binary as the CLI (the
// SNACCBENCH_MAIN hook below) and checks that malformed -serve flags are
// usage errors — exit 2 with a diagnostic — while a valid invocation
// completes and writes BENCH_serve.json.
func TestServeFlagValidation(t *testing.T) {
	if os.Getenv("SNACCBENCH_MAIN") == "1" {
		os.Args = append([]string{"snaccbench"},
			strings.Fields(os.Getenv("SNACCBENCH_ARGS"))...)
		main()
		return
	}
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}

	cases := []struct {
		name     string
		args     string
		wantExit int
		wantErr  string
	}{
		{"clients without serve", "-clients 100", 2, "-clients/-phases require -serve"},
		{"phases without serve", "-phases 1:200", 2, "-clients/-phases require -serve"},
		{"non-integer clients", "-serve -clients 10,abc", 2, "not an integer"},
		{"zero clients", "-serve -clients 0", 2, "must be positive"},
		{"empty clients", "-serve -clients ,", 2, "not an integer"},
		{"phases missing duration", "-serve -phases 1", 2, "scale:µs"},
		{"phases zero scale", "-serve -phases 0:200", 2, "scale must be a positive number"},
		{"phases bad duration", "-serve -phases 1:xyz", 2, "duration must be positive"},
		{"valid run", "-serve -clients 1000,2000 -phases 1:100,4:25", 0, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			cmd := exec.Command(os.Args[0], "-test.run=TestServeFlagValidation")
			cmd.Dir = dir
			cmd.Env = append(os.Environ(),
				"SNACCBENCH_MAIN=1", "SNACCBENCH_ARGS="+tc.args)
			out, err := cmd.CombinedOutput()
			exit := 0
			if ee, ok := err.(*exec.ExitError); ok {
				exit = ee.ExitCode()
			} else if err != nil {
				t.Fatalf("running %q: %v\n%s", tc.args, err, out)
			}
			if exit != tc.wantExit {
				t.Fatalf("%q exited %d, want %d\n%s", tc.args, exit, tc.wantExit, out)
			}
			if tc.wantErr != "" && !strings.Contains(string(out), tc.wantErr) {
				t.Fatalf("%q output %q does not mention %q", tc.args, out, tc.wantErr)
			}
			if tc.wantExit == 0 {
				doc, err := os.ReadFile(filepath.Join(dir, "BENCH_serve.json"))
				if err != nil {
					t.Fatalf("valid -serve run left no BENCH_serve.json: %v", err)
				}
				if !strings.Contains(string(doc), "Serve sweep") {
					t.Fatalf("BENCH_serve.json content: %q", doc)
				}
			}
		})
	}
}

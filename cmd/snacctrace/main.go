// Command snacctrace replays the paper's §5.2 Integrated-Logic-Analyzer
// methodology in simulation: it attaches a transaction tracer to the FPGA
// card's PCIe boundary, runs a Streamer workload, and prints both the raw
// transaction trace and the derived analysis (request inter-arrival gaps,
// completer service latency, implied bandwidth) that the paper used to
// attribute the URAM write ceiling to PCIe P2P rather than the Streamer.
//
// A second mode, -spans, switches from the boundary view to the per-command
// view: it runs the same workload with the span tracer enabled and prints
// per-command waterfalls (every pipeline stage, timestamped) and the
// stage-latency percentile table derived from all traced commands.
//
// Usage:
//
//	snacctrace [-variant uram|obdram|hostdram] [-op write|read]
//	           [-size MiB] [-events N]
//	snacctrace -spans [-variant ...] [-op ...] [-size MiB] [-n N]
package main

import (
	"flag"
	"fmt"
	"os"

	"snacc"
	"snacc/internal/bench"
	"snacc/internal/nvme"
	"snacc/internal/obs"
	"snacc/internal/pcie"
	"snacc/internal/sim"
	"snacc/internal/streamer"
	"snacc/internal/tapasco"
)

const ssdBAR = 0x10_0000_0000

func main() {
	variant := flag.String("variant", "uram", "streamer variant: uram, obdram, hostdram")
	op := flag.String("op", "write", "workload: write or read (1 MiB sequential commands)")
	sizeMiB := flag.Int64("size", 64, "transfer volume (MiB)")
	events := flag.Int("events", 24, "raw trace events to print")
	spans := flag.Bool("spans", false, "trace per-command spans instead of the PCIe boundary")
	nspans := flag.Int("n", 4, "command waterfalls to print in -spans mode")
	flag.Parse()

	var v streamer.Variant
	switch *variant {
	case "uram":
		v = streamer.URAM
	case "obdram":
		v = streamer.OnboardDRAM
	case "hostdram":
		v = streamer.HostDRAM
	default:
		fmt.Fprintf(os.Stderr, "unknown variant %q\n", *variant)
		os.Exit(2)
	}
	switch *op {
	case "write", "read":
	default:
		fmt.Fprintf(os.Stderr, "unknown op %q (want write or read)\n", *op)
		os.Exit(2)
	}

	if *spans {
		runSpans(v, *op, *sizeMiB, *nspans)
		return
	}

	k := sim.NewKernel()
	pl := tapasco.NewPlatform(k, tapasco.DefaultU280())
	nvme.New(k, pl.Fabric, nvme.DefaultConfig("ssd0", ssdBAR))
	st := pl.AddStreamer(streamer.DefaultConfig("snacc0", 0, v))
	drv := tapasco.NewDriver(pl, "ssd0", ssdBAR)

	tr := pcie.NewTracer(k)
	if v != streamer.HostDRAM {
		base := st.Config().WindowBase
		span := uint64(st.Config().ReadBufBytes + st.Config().WriteBufBytes)
		if v == streamer.URAM {
			span = uint64(st.Config().ReadBufBytes)
		}
		tr.Filter = func(addr uint64, n int64) bool {
			return addr >= base && addr < base+span && n >= 4096
		}
		pl.Card.AttachTracer(tr)
	} else {
		// The host-DRAM variant stages in host memory: trace there.
		hostCfg := pl.Config().Host
		tr.Filter = func(addr uint64, n int64) bool {
			return addr >= hostCfg.MemBase && n >= 4096
		}
		pl.Host.Port.AttachTracer(tr)
	}

	var bw float64
	k.Spawn("main", func(p *sim.Proc) {
		if err := drv.InitController(p); err != nil {
			panic(err)
		}
		if err := drv.AttachStreamer(p, st, 1); err != nil {
			panic(err)
		}
		c := streamer.NewClient(st)
		if *op == "read" {
			// Precondition, then trace the read path.
			streamer.SeqWrite(p, c, 0, *sizeMiB*sim.MiB)
			tr.Reset()
			bw = streamer.SeqRead(p, c, 0, *sizeMiB*sim.MiB).GBps()
		} else {
			bw = streamer.SeqWrite(p, c, 0, *sizeMiB*sim.MiB).GBps()
		}
	})
	k.Run(0)

	fmt.Printf("workload: %s %s, %d MiB → %.2f GB/s\n\n", *variant, *op, *sizeMiB, bw)

	evs := tr.Events()
	fmt.Printf("captured %d transactions at the staging-buffer boundary\n", len(evs))
	n := *events
	if n > len(evs) {
		n = len(evs)
	}
	fmt.Println("first events:")
	for _, e := range evs[:n] {
		fmt.Printf("  %12v  %-9s addr=%#x len=%d\n", e.At, e.Kind, e.Addr, e.Len)
	}

	fmt.Println("\nanalysis (the paper's §5.2 ILA reasoning):")
	if reqs := tr.OfKind(pcie.TraceReadReq); len(reqs) > 1 {
		gap := tr.MeanGap(pcie.TraceReadReq)
		fmt.Printf("  controller read requests: %d, mean gap %v → implied fetch BW %.2f GB/s\n",
			len(reqs), gap, 4096/gap.Seconds()/1e9)
		svc := tr.ServiceLatency()
		fmt.Printf("  our completer's service latency: mean %v, p99 %v (\"our end responds immediately\")\n",
			svc.Mean(), svc.Percentile(99))
	}
	if wrs := tr.OfKind(pcie.TraceWriteIn); len(wrs) > 1 {
		gap := tr.MeanGap(pcie.TraceWriteIn)
		var bytes int64
		for _, e := range wrs {
			bytes += e.Len
		}
		mean := bytes / int64(len(wrs))
		fmt.Printf("  inbound posted writes: %d, mean %d B, mean gap %v → %.2f GB/s\n",
			len(wrs), mean, gap, float64(mean)/gap.Seconds()/1e9)
	}
}

// runSpans runs the workload through the public snacc API with span tracing
// enabled, prints per-command waterfalls for the first nspans commands of
// the selected direction, verifies monotonicity across every traced span,
// and closes with the per-stage latency percentile table.
func runSpans(v streamer.Variant, op string, sizeMiB int64, nspans int) {
	functional := false
	sys := snacc.MustNewSystem(snacc.Options{
		Variant:    v,
		Functional: &functional,
		// Retain every span: one command per MiB each way, plus slack.
		Trace: &snacc.TraceOptions{SpanLimit: int(2*sizeMiB) + 16},
	})
	sys.Execute(func(h *snacc.Handle) {
		h.WriteTimed(0, sizeMiB*sim.MiB)
		if op == "read" {
			h.ReadTimed(0, sizeMiB*sim.MiB)
		}
	})

	all := sys.Spans()
	var sel []snacc.Span
	for _, sp := range all {
		if sp.Write == (op == "write") {
			sel = append(sel, sp)
		}
	}
	stats := sys.Stats()
	fmt.Printf("workload: %s %s, %d MiB — traced %d spans (%d %s), opened=%d closed=%d\n",
		v, op, sizeMiB, len(all), len(sel), op, stats.SpansOpened, stats.SpansClosed)

	bad := 0
	for _, sp := range all {
		if !sp.Monotone() {
			bad++
		}
	}
	if bad > 0 || stats.SpansOpened != stats.SpansClosed {
		fmt.Fprintf(os.Stderr, "span invariants violated: %d non-monotone spans, opened=%d closed=%d\n",
			bad, stats.SpansOpened, stats.SpansClosed)
		os.Exit(1)
	}
	fmt.Println("all spans monotone, every opened span closed")

	n := nspans
	if n > len(sel) {
		n = len(sel)
	}
	fmt.Printf("\nfirst %d command waterfalls (offsets from acceptance):\n", n)
	for _, sp := range sel[:n] {
		printWaterfall(sp)
	}

	fmt.Println()
	fmt.Println(bench.RenderLatencyBreakdown(bench.LatencyStages(v.String(), op, sel)))
}

// printWaterfall renders one span as a stage-by-stage timeline.
func printWaterfall(sp snacc.Span) {
	fmt.Printf("span %d: %s addr=%#x len=%d status=%#x\n",
		sp.ID, map[bool]string{true: "write", false: "read"}[sp.Write], sp.Addr, sp.Len, sp.Status)
	base := sp.Stages[obs.StageAccepted]
	prev := base
	for st := obs.StageAccepted; st < obs.NumStages; st++ {
		at := sp.Stages[st]
		if at < 0 {
			continue
		}
		fmt.Printf("  %-10s %12v  (+%v)\n", st, at-base, at-prev)
		prev = at
	}
	for _, a := range sp.Annots {
		fmt.Printf("  ! %s at %v\n", a.Kind, a.At-base)
	}
}

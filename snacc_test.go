package snacc

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"snacc/internal/sim"
)

func TestSystemWriteReadRoundTrip(t *testing.T) {
	for _, v := range []Variant{URAM, OnboardDRAM, HostDRAM} {
		t.Run(v.String(), func(t *testing.T) {
			sys := MustNewSystem(Options{Variant: v})
			want := make([]byte, 256*1024)
			for i := range want {
				want[i] = byte(i % 251)
			}
			sys.Execute(func(h *Handle) {
				h.Write(0, want)
				got := h.Read(0, int64(len(want)))
				if !bytes.Equal(got, want) {
					t.Error("round trip corrupted data")
				}
			})
			st := sys.Stats()
			if st.CommandErrors != 0 {
				t.Errorf("command errors: %d", st.CommandErrors)
			}
			if st.CommandsSubmitted != st.CommandsRetired {
				t.Errorf("submitted %d != retired %d", st.CommandsSubmitted, st.CommandsRetired)
			}
		})
	}
}

func TestSystemMultipleExecutes(t *testing.T) {
	// Simulated time and SSD contents must persist across Execute calls.
	sys := MustNewSystem(Options{Variant: URAM})
	var t1, t2 int64
	sys.Execute(func(h *Handle) {
		block := make([]byte, 512)
		copy(block, "persist me across executes")
		h.Write(0, block)
		t1 = h.Now()
	})
	sys.Execute(func(h *Handle) {
		t2 = h.Now()
		got := h.Read(0, 512)
		if string(got[:10]) != "persist me" {
			t.Error("data did not survive across Execute calls")
		}
	})
	if t2 < t1 {
		t.Errorf("time went backwards: %d then %d", t1, t2)
	}
}

func TestSystemTimedOpsAdvanceTime(t *testing.T) {
	f := false
	sys := MustNewSystem(Options{Variant: HostDRAM, Functional: &f})
	sys.Execute(func(h *Handle) {
		start := h.Now()
		h.WriteTimed(0, 8<<20)
		if h.Now() <= start {
			t.Error("WriteTimed consumed no simulated time")
		}
		mid := h.Now()
		h.ReadTimed(0, 8<<20)
		if h.Now() <= mid {
			t.Error("ReadTimed consumed no simulated time")
		}
	})
}

func TestSystemDeterminism(t *testing.T) {
	run := func() (int64, Stats) {
		f := false
		sys := MustNewSystem(Options{Variant: OnboardDRAM, Functional: &f, Seed: 99})
		var done int64
		sys.Execute(func(h *Handle) {
			h.WriteTimed(0, 32<<20)
			h.ReadTimed(0, 32<<20)
			done = h.Now()
		})
		return done, sys.Stats()
	}
	d1, s1 := run()
	d2, s2 := run()
	if d1 != d2 {
		t.Errorf("same seed diverged in time: %d vs %d", d1, d2)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("same seed diverged in stats: %+v vs %+v", s1, s2)
	}
}

func TestSystemKernelWorkersIdentical(t *testing.T) {
	// The sharded scheduler must reproduce the serial kernel's timeline
	// byte for byte: same end time, same stats, at every worker count.
	run := func(workers int) (int64, Stats) {
		f := false
		sys := MustNewSystem(Options{Variant: OnboardDRAM, Functional: &f,
			Seed: 99, KernelWorkers: workers})
		if got := sys.KernelWorkers(); workers > 1 && got != workers {
			t.Fatalf("KernelWorkers() = %d, want %d", got, workers)
		}
		var done int64
		sys.Execute(func(h *Handle) {
			h.WriteTimed(0, 16<<20)
			h.ReadTimed(0, 16<<20)
			done = h.Now()
		})
		return done, sys.Stats()
	}
	d1, s1 := run(1)
	for _, w := range []int{2, 4} {
		dw, sw := run(w)
		if dw != d1 {
			t.Errorf("KernelWorkers=%d end time %d differs from serial %d", w, dw, d1)
		}
		if !reflect.DeepEqual(sw, s1) {
			t.Errorf("KernelWorkers=%d stats diverged:\n%+v\nvs serial\n%+v", w, sw, s1)
		}
	}
	if _, err := NewSystem(Options{KernelWorkers: -1}); err == nil {
		t.Error("negative KernelWorkers accepted")
	}
}

func TestSystemOutOfOrderOption(t *testing.T) {
	sys := MustNewSystem(Options{Variant: OnboardDRAM, OutOfOrder: true})
	want := bytes.Repeat([]byte{0xA5}, 128*1024)
	sys.Execute(func(h *Handle) {
		h.Write(4096, want)
		if !bytes.Equal(h.Read(4096, int64(len(want))), want) {
			t.Error("OOO system corrupted data")
		}
	})
}

// Property: arbitrary (aligned) write/read sequences round-trip through the
// full protocol stack.
func TestSystemRoundTripProperty(t *testing.T) {
	sys := MustNewSystem(Options{Variant: URAM})
	f := func(addrRaw uint16, lenRaw uint8, fill byte) bool {
		addr := uint64(addrRaw) * 512
		n := (int64(lenRaw)%64 + 1) * 512
		data := bytes.Repeat([]byte{fill}, int(n))
		ok := false
		sys.Execute(func(h *Handle) {
			h.Write(addr, data)
			ok = bytes.Equal(h.Read(addr, n), data)
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestResourcesMatchTable1(t *testing.T) {
	sys := MustNewSystem(Options{Variant: URAM})
	r := sys.Resources()
	if r.LUT != 7260 || r.FF != 8388 {
		t.Errorf("URAM resources = %v, want Table 1 values", r)
	}
}

func TestExperimentDefaults(t *testing.T) {
	// The zero-value entry points must pick sane defaults and return full
	// row sets. (Fast variants only; the full sweeps run in the benches.)
	rows := Figure4c(40)
	if len(rows) != 4 {
		t.Fatalf("Figure4c rows = %d, want 4", len(rows))
	}
	t1 := TableOne()
	if len(t1) != 3 {
		t.Fatalf("TableOne rows = %d, want 3", len(t1))
	}
	if out := RenderTableOne(t1).String(); len(out) == 0 {
		t.Fatal("render produced nothing")
	}
}

func TestCaseStudySingleVariant(t *testing.T) {
	r := CaseStudy(URAM, 24)
	if r.GBps() < 4.5 || r.GBps() > 6.2 {
		t.Errorf("URAM case study = %.2f GB/s", r.GBps())
	}
	if r.Errors != 0 || r.FramesDropped != 0 {
		t.Errorf("errors=%d drops=%d", r.Errors, r.FramesDropped)
	}
}

func TestStatsPCIeAccounting(t *testing.T) {
	f := false
	sys := MustNewSystem(Options{Variant: URAM, Functional: &f})
	sys.Execute(func(h *Handle) { h.WriteTimed(0, 16*sim.MiB) })
	st := sys.Stats()
	// A URAM-variant write moves the payload over PCIe exactly once (SSD
	// P2P fetch); host memory only sees queue/identify traffic.
	if st.PCIeSSDRx < 16*sim.MiB {
		t.Errorf("SSD received %d bytes, want >= 16 MiB", st.PCIeSSDRx)
	}
	if st.PCIeHostRx > sim.MiB {
		t.Errorf("host received %d bytes; URAM path should bypass host memory", st.PCIeHostRx)
	}
}

func TestReportProducesAllSections(t *testing.T) {
	out := Report(ReportOptions{TransferMiB: 64, Images: 32, LatencySamples: 40})
	for _, want := range []string{"Figure 4a", "Figure 4b", "Figure 4c", "Table 1", "Figure 6", "Figure 7"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("report missing section %q", want)
		}
	}
}

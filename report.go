package snacc

import (
	"fmt"
	"strings"

	"snacc/internal/bench"
	"snacc/internal/sim"
)

// ReportOptions scales the full-evaluation report.
type ReportOptions struct {
	// TransferMiB is the volume per bandwidth measurement (default 256;
	// the paper uses 1024).
	TransferMiB int64
	// Images is the case-study stream length (default 128; paper 16384).
	Images int
	// LatencySamples for Figure 4c (default 150).
	LatencySamples int
	// Ablations includes the §7 extension experiments.
	Ablations bool
}

// Report regenerates the paper's entire evaluation and returns it as one
// formatted text document — the programmatic equivalent of
// `snaccbench -all`.
func Report(opts ReportOptions) string {
	if opts.TransferMiB <= 0 {
		opts.TransferMiB = 256
	}
	if opts.Images <= 0 {
		opts.Images = 128
	}
	if opts.LatencySamples <= 0 {
		opts.LatencySamples = 150
	}
	size := opts.TransferMiB * sim.MiB

	var b strings.Builder
	b.WriteString("SNAcc evaluation report (simulated; see EXPERIMENTS.md for calibration)\n\n")
	fmt.Fprintln(&b, bench.RenderFig4a(bench.Fig4a(size)))
	fmt.Fprintln(&b, bench.RenderFig4b(bench.Fig4b(size/4)))
	fmt.Fprintln(&b, bench.RenderFig4c(bench.Fig4c(opts.LatencySamples)))
	fmt.Fprintln(&b, bench.RenderTable1(bench.Table1()))
	caseRows := bench.Fig6(opts.Images)
	fmt.Fprintln(&b, bench.RenderFig6(caseRows))
	fmt.Fprintln(&b, bench.RenderFig7(caseRows))
	if opts.Ablations {
		fmt.Fprintln(&b, bench.RenderAblationQD(bench.AblationQD([]int{16, 64, 256}, size/8)))
		fmt.Fprintln(&b, bench.RenderAblationOOO(bench.AblationOOO(size/8)))
		fmt.Fprintln(&b, bench.RenderAblationMultiSSD(bench.AblationMultiSSD([]int{1, 2, 4}, size/2)))
		fmt.Fprintln(&b, bench.RenderAblationGen5(bench.AblationGen5(size)))
		fmt.Fprintln(&b, bench.RenderAblationDRAM(bench.AblationDRAM(size)))
		fmt.Fprintln(&b, bench.RenderAblationHBM(bench.AblationHBM(size)))
		fmt.Fprintln(&b, bench.RenderFig6Striped(bench.Fig6Striped([]int{1, 2, 3}, opts.Images)))
		fmt.Fprintln(&b, bench.RenderAblationQP(bench.AblationQP([]int{1, 2, 4}, size/8)))
		fmt.Fprintln(&b, bench.RenderAblationMTU(bench.AblationMTU([]int64{1500, 4096, 9000}, opts.Images)))
	}
	return b.String()
}

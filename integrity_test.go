package snacc

import (
	"bytes"
	"fmt"
	"testing"

	"snacc/internal/sim"
)

// TestRandomizedDataIntegrity drives a functional system with a randomized
// sequence of overlapping writes and reads through the public API and checks
// every read against a byte-exact shadow model of the device. This is the
// end-to-end data-path proof: PRP synthesis, command splitting, staging
// buffers, NAND striping and retirement ordering all have to preserve bytes
// for it to pass. Every buffer variant runs twice: with the paper's
// single-SQ submission path and with the path sharded over four coalescing
// queue pairs, which must be byte-equivalent.
func TestRandomizedDataIntegrity(t *testing.T) {
	for _, v := range []Variant{URAM, OnboardDRAM, HostDRAM} {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			runIntegrity(t, Options{Variant: v})
		})
		t.Run(v.String()+"-4q", func(t *testing.T) {
			runIntegrity(t, Options{Variant: v, IOQueues: 4, DoorbellBatch: 8})
		})
	}
}

func runIntegrity(t *testing.T, opts Options) {
	fn := true
	opts.Functional = &fn
	sys := MustNewSystem(opts)
	const span = 4 << 20 // 4 MiB working window
	shadow := make([]byte, span)
	rng := sim.NewRand(uint64(opts.Variant) + 99)

	// Failures are collected and reported outside Execute: t.Fatalf
	// inside a sim proc goroutine aborts it without unwinding the
	// kernel and deadlocks the run.
	var failure string
	sys.Execute(func(h *Handle) {
		for op := 0; op < 120; op++ {
			// 512-aligned offset and length within the window; sizes
			// cross sector, page and (occasionally) buffer-slot
			// boundaries.
			n := (rng.Int63n(96) + 1) * 512
			addr := uint64(rng.Int63n((span-n)/512)) * 512
			if rng.Float64() < 0.55 {
				data := make([]byte, n)
				for i := range data {
					data[i] = byte(rng.Int63n(256))
				}
				h.Write(addr, data)
				copy(shadow[addr:], data)
			} else {
				got := h.Read(addr, n)
				want := shadow[addr : addr+uint64(n)]
				if !bytes.Equal(got, want) {
					failure = fmt.Sprintf("op %d: read %d@%#x diverged from shadow (first diff at %d)",
						op, n, addr, firstDiff(got, want))
					return
				}
			}
		}
		// Final full-window readback.
		got := h.Read(0, span)
		if !bytes.Equal(got, shadow) {
			failure = fmt.Sprintf("final readback diverged at byte %d", firstDiff(got, shadow))
		}
	})
	if failure != "" {
		t.Fatal(failure)
	}
}

func firstDiff(a, b []byte) int {
	for i := range a {
		if i >= len(b) || a[i] != b[i] {
			return i
		}
	}
	return -1
}

package snacc

import (
	"snacc/internal/bench"
	"snacc/internal/casestudy"
	"snacc/internal/sim"
)

// Experiment result types, re-exported from the bench harness so callers
// outside internal/ can consume them.
type (
	// Fig4aRow is one bar group of Figure 4a (sequential bandwidth).
	Fig4aRow = bench.Fig4aRow
	// Fig4bRow is one bar group of Figure 4b (random 4 KiB bandwidth).
	Fig4bRow = bench.Fig4bRow
	// Fig4cRow is one bar group of Figure 4c (4 KiB latency).
	Fig4cRow = bench.Fig4cRow
	// Table1Row is one column of Table 1 (FPGA resources).
	Table1Row = bench.Table1Row
	// CaseStudyResult is one Figure 6/7 configuration outcome.
	CaseStudyResult = casestudy.Result
	// RenderedTable is a formatted text table.
	RenderedTable = bench.Table
)

// SetParallelism selects how many worker goroutines the experiment runners
// shard independent simulation rigs across. n <= 0 selects all CPUs; the
// default is 1 (serial). Every rig owns a private simulation kernel with
// fixed seeds and rows are collected by index, so results are bit-identical
// at any setting. Set it once before running experiments, not concurrently
// with them.
func SetParallelism(n int) { bench.SetParallelism(n) }

// Parallelism reports the configured experiment worker count.
func Parallelism() int { return bench.Parallelism() }

// Figure4a regenerates the paper's Figure 4a (sequential NVMe bandwidth
// for the three Streamer variants and SPDK). totalBytes is the transfer
// size per measurement; 0 selects a fast default that already reaches
// steady state (the paper uses 1 GB).
func Figure4a(totalBytes int64) []Fig4aRow {
	if totalBytes <= 0 {
		totalBytes = 256 * sim.MiB
	}
	return bench.Fig4a(totalBytes)
}

// Figure4b regenerates Figure 4b (random 4 KiB bandwidth at QD 64).
func Figure4b(totalBytes int64) []Fig4bRow {
	if totalBytes <= 0 {
		totalBytes = 64 * sim.MiB
	}
	return bench.Fig4b(totalBytes)
}

// Figure4c regenerates Figure 4c (4 KiB access latency, QD 1).
func Figure4c(samples int) []Fig4cRow {
	if samples <= 0 {
		samples = 200
	}
	return bench.Fig4c(samples)
}

// TableOne regenerates Table 1 (FPGA resource utilization).
func TableOne() []Table1Row { return bench.Table1() }

// Figure6 regenerates Figure 6 (case-study bandwidth, all five
// implementations). images 0 selects a fast default; the paper streams
// 16384 frames.
func Figure6(images int) []CaseStudyResult { return bench.Fig6(images) }

// Figure7 regenerates Figure 7 (case-study PCIe traffic). The traffic
// accounting is collected on the same runs as Figure 6.
func Figure7(images int) []CaseStudyResult { return bench.Fig7(images) }

// CaseStudy runs one SNAcc case-study configuration with a custom image
// count.
func CaseStudy(v Variant, images int) CaseStudyResult {
	cfg := casestudy.DefaultConfig()
	if images > 0 {
		cfg.Images = images
		cfg.Source.Count = images
	}
	return casestudy.RunSNAcc(v, cfg)
}

// Rendered table helpers, for printing paper-style output.

// RenderFigure4a formats Figure 4a rows as a text table.
func RenderFigure4a(rows []Fig4aRow) RenderedTable { return bench.RenderFig4a(rows) }

// RenderFigure4b formats Figure 4b rows.
func RenderFigure4b(rows []Fig4bRow) RenderedTable { return bench.RenderFig4b(rows) }

// RenderFigure4c formats Figure 4c rows.
func RenderFigure4c(rows []Fig4cRow) RenderedTable { return bench.RenderFig4c(rows) }

// RenderTableOne formats Table 1 rows.
func RenderTableOne(rows []Table1Row) RenderedTable { return bench.RenderTable1(rows) }

// RenderFigure6 formats Figure 6 results.
func RenderFigure6(rows []CaseStudyResult) RenderedTable { return bench.RenderFig6(rows) }

// RenderFigure7 formats Figure 7 results.
func RenderFigure7(rows []CaseStudyResult) RenderedTable { return bench.RenderFig7(rows) }

// Ablation result types.
type (
	// AblationQDRow is one queue-depth sweep point (A1).
	AblationQDRow = bench.AblationQDRow
	// AblationOOORow compares retirement policies (A2).
	AblationOOORow = bench.AblationOOORow
	// AblationMultiSSDRow is one multi-SSD scaling point (A3).
	AblationMultiSSDRow = bench.AblationMultiSSDRow
	// AblationGen5Row is the PCIe 5.0 projection (A4).
	AblationGen5Row = bench.AblationGen5Row
	// AblationDRAMRow is the DRAM-controller comparison (A5).
	AblationDRAMRow = bench.AblationDRAMRow
)

// AblationQueueDepth sweeps random-read bandwidth over queue depths (A1).
func AblationQueueDepth(depths []int, totalBytes int64) []AblationQDRow {
	if totalBytes <= 0 {
		totalBytes = 24 * sim.MiB
	}
	return bench.AblationQD(depths, totalBytes)
}

// AblationOutOfOrder compares in-order vs out-of-order retirement (A2).
func AblationOutOfOrder(totalBytes int64) []AblationOOORow {
	if totalBytes <= 0 {
		totalBytes = 24 * sim.MiB
	}
	return bench.AblationOOO(totalBytes)
}

// AblationMultiSSD scales Streamer+SSD pairs on one card (A3).
func AblationMultiSSD(counts []int, perSSDBytes int64) []AblationMultiSSDRow {
	if perSSDBytes <= 0 {
		perSSDBytes = 96 * sim.MiB
	}
	return bench.AblationMultiSSD(counts, perSSDBytes)
}

// AblationGen5 projects a PCIe 5.0 SSD (A4).
func AblationGen5(totalBytes int64) []AblationGen5Row {
	if totalBytes <= 0 {
		totalBytes = 192 * sim.MiB
	}
	return bench.AblationGen5(totalBytes)
}

// AblationDRAMController quantifies on-board DRAM contention (A5).
func AblationDRAMController(totalBytes int64) []AblationDRAMRow {
	if totalBytes <= 0 {
		totalBytes = 192 * sim.MiB
	}
	return bench.AblationDRAM(totalBytes)
}

// RenderAblationQueueDepth formats A1 rows.
func RenderAblationQueueDepth(rows []AblationQDRow) RenderedTable {
	return bench.RenderAblationQD(rows)
}

// RenderAblationOutOfOrder formats A2 rows.
func RenderAblationOutOfOrder(rows []AblationOOORow) RenderedTable {
	return bench.RenderAblationOOO(rows)
}

// RenderAblationMultiSSD formats A3 rows.
func RenderAblationMultiSSD(rows []AblationMultiSSDRow) RenderedTable {
	return bench.RenderAblationMultiSSD(rows)
}

// RenderAblationGen5 formats A4 rows.
func RenderAblationGen5(rows []AblationGen5Row) RenderedTable { return bench.RenderAblationGen5(rows) }

// RenderAblationDRAMController formats A5 rows.
func RenderAblationDRAMController(rows []AblationDRAMRow) RenderedTable {
	return bench.RenderAblationDRAM(rows)
}

// AblationHBMRow compares DDR4 vs HBM staging (A6).
type AblationHBMRow = bench.AblationHBMRow

// AblationHBM stages the on-card buffers in HBM (A6, §7).
func AblationHBM(totalBytes int64) []AblationHBMRow {
	if totalBytes <= 0 {
		totalBytes = 192 * sim.MiB
	}
	return bench.AblationHBM(totalBytes)
}

// RenderAblationHBM formats A6 rows.
func RenderAblationHBM(rows []AblationHBMRow) RenderedTable { return bench.RenderAblationHBM(rows) }

// CaseStudyStriped runs the case study persisting through n striped
// Streamer+SSD pairs (ablation A7, the §7 multi-SSD extension).
func CaseStudyStriped(counts []int, images int) []CaseStudyResult {
	return bench.Fig6Striped(counts, images)
}

// RenderCaseStudyStriped formats A7 rows.
func RenderCaseStudyStriped(rows []CaseStudyResult) RenderedTable {
	return bench.RenderFig6Striped(rows)
}

// AblationMTURow is one Ethernet frame-size sensitivity point (A8).
type AblationMTURow = bench.AblationMTURow

// AblationMTU sweeps the Ethernet MTU for the network-bound 3-SSD striped
// case study (A8): the pipeline tracks the link's MTU/(MTU+38) payload
// ceiling.
func AblationMTU(mtus []int64, images int) []AblationMTURow {
	if len(mtus) == 0 {
		mtus = []int64{1500, 4096, 9000}
	}
	return bench.AblationMTU(mtus, images)
}

// RenderAblationMTU formats A8 rows.
func RenderAblationMTU(rows []AblationMTURow) RenderedTable { return bench.RenderAblationMTU(rows) }

// AblationQPRow is one queue-pair scaling point (A9).
type AblationQPRow = bench.AblationQPRow

// AblationQueuePairs attaches n Streamers to one SSD over n queue pairs
// (A9, §7): sequential writes hold the single-SSD ceiling while random
// reads scale with the per-queue in-order FSMs.
func AblationQueuePairs(counts []int, totalBytes int64) []AblationQPRow {
	if totalBytes <= 0 {
		totalBytes = 32 * sim.MiB
	}
	if len(counts) == 0 {
		counts = []int{1, 2, 4}
	}
	return bench.AblationQP(counts, totalBytes)
}

// RenderAblationQueuePairs formats A9 rows.
func RenderAblationQueuePairs(rows []AblationQPRow) RenderedTable { return bench.RenderAblationQP(rows) }

// StripedDegradedRow summarizes a striped set losing one member mid-stream.
type StripedDegradedRow = bench.StripedDegradedRow

// StripedDegraded demonstrates degraded multi-SSD operation: a striped set
// whose member 1 is surprise-removed mid-stream keeps streaming on the
// survivors, failing only the dead member's stripes with attributed
// errors.
func StripedDegraded(members int, totalBytes int64) StripedDegradedRow {
	if members <= 0 {
		members = 3
	}
	if totalBytes <= 0 {
		totalBytes = 48 * sim.MiB
	}
	return bench.StripedDegraded(members, totalBytes)
}

// RenderStripedDegraded formats the degraded-operation demo.
func RenderStripedDegraded(r StripedDegradedRow) RenderedTable {
	return bench.RenderStripedDegraded(r)
}

package snacc

import (
	"bytes"
	"testing"
)

// TestFaultAPIRecoversInjectedErrors drives the public fault surface end to
// end: a system built with Options.Faults must retry injected read errors
// transparently, deliver intact data, and expose the recovery accounting in
// Stats.
func TestFaultAPIRecoversInjectedErrors(t *testing.T) {
	sys := MustNewSystem(Options{Variant: URAM, Faults: &FaultOptions{
		Seed:          7,
		ReadErrorRate: 0.2,
	}})
	want := make([]byte, 512*1024)
	for i := range want {
		want[i] = byte(i % 253)
	}
	sys.Execute(func(h *Handle) {
		h.Write(0, want)
		// Read repeatedly so the 20% rate is certain to fire.
		for i := 0; i < 8; i++ {
			got, err := h.ReadErr(0, int64(len(want)))
			if err != nil {
				t.Fatalf("read %d failed terminally: %v", i, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("read %d returned corrupted data", i)
			}
		}
	})
	st := sys.Stats()
	if st.FaultsInjected == 0 {
		t.Fatal("20% read-error rate injected nothing")
	}
	if st.CommandErrors != st.FaultsInjected {
		t.Errorf("error CQEs = %d, injected = %d; errors were swallowed",
			st.CommandErrors, st.FaultsInjected)
	}
	if st.CommandRetries+st.CommandAborts != st.CommandErrors {
		t.Errorf("retries+aborts = %d+%d, want every error (%d) dispositioned",
			st.CommandRetries, st.CommandAborts, st.CommandErrors)
	}
	if st.CommandAborts != 0 {
		t.Errorf("intact data delivered yet %d aborts recorded", st.CommandAborts)
	}
}

// TestFaultAPIZeroRetriesAborts pins MaxRetries: -1 (abort on first failure)
// and the error surfaced by ReadErr.
func TestFaultAPIZeroRetriesAborts(t *testing.T) {
	sys := MustNewSystem(Options{Variant: URAM, Faults: &FaultOptions{
		Seed:          7,
		ReadErrorRate: 1, // every read command fails
		MaxRetries:    -1,
	}})
	sys.Execute(func(h *Handle) {
		block := make([]byte, 4096)
		h.Write(0, block)
		got, err := h.ReadErr(0, 4096)
		if err == nil {
			t.Fatal("certain read failure with no retries returned success")
		}
		if len(got) != 0 {
			t.Fatalf("aborted read delivered %d bytes, want none", len(got))
		}
	})
	st := sys.Stats()
	if st.CommandAborts == 0 || st.CommandRetries != 0 {
		t.Errorf("aborts=%d retries=%d, want 1+/0", st.CommandAborts, st.CommandRetries)
	}
}

// TestFaultAPIDisabledByDefault: a plain system must not pay for recovery —
// no injector, no retry accounting, stats identically zero.
func TestFaultAPIDisabledByDefault(t *testing.T) {
	sys := MustNewSystem(Options{Variant: URAM})
	sys.Execute(func(h *Handle) {
		h.WriteTimed(0, 1<<20)
		h.ReadTimed(0, 1<<20)
	})
	st := sys.Stats()
	if st.FaultsInjected != 0 || st.CommandRetries != 0 || st.CommandTimeouts != 0 ||
		st.CommandAborts != 0 || st.ProtocolErrors != 0 || st.CommandErrors != 0 {
		t.Errorf("fault-free system shows recovery activity: %+v", st)
	}
}

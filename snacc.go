// Package snacc is a full-system simulation of SNAcc, the open-source
// framework for streaming-based network-to-storage FPGA accelerators
// (Volz, Kalkhof, Koch — SC Workshops '25). It reproduces the paper's
// entire stack in deterministic discrete-event simulation: a PCIe fabric
// with peer-to-peer transfers and an IOMMU, a protocol-level NVMe SSD
// model, the TaPaSCo platform layer, 100 G Ethernet with 802.3x flow
// control, and — as the core contribution — the NVMe Streamer IP in its
// three buffer variants (URAM, on-board DRAM, host DRAM) with on-the-fly
// PRP-list synthesis and in-order retirement.
//
// The package exposes two levels:
//
//   - System / Handle: build a simulated FPGA+SSD system and drive it the
//     way a user PE drives the Streamer's four AXI streams — writes carry
//     real bytes end to end through the NVMe protocol onto simulated
//     flash, and reads bring them back.
//
//   - Figure4a … Figure7, TableOne, Ablation…: regenerate every table and
//     figure of the paper's evaluation.
package snacc

import (
	"fmt"

	"snacc/internal/cluster"
	"snacc/internal/ethernet"
	"snacc/internal/fault"
	"snacc/internal/fpga"
	"snacc/internal/nvme"
	"snacc/internal/obs"
	"snacc/internal/pcie"
	"snacc/internal/serve"
	"snacc/internal/sim"
	"snacc/internal/streamer"
	"snacc/internal/tapasco"
	"snacc/internal/workload"
)

// Span is a traced NVMe command: timestamped pipeline stages from PE
// acceptance to in-order retirement, plus retry/replay/breaker annotations.
type Span = obs.Span

// SpanStage identifies one pipeline stage of a Span.
type SpanStage = obs.Stage

// LatencyHist is a fixed-bucket latency histogram (log-spaced buckets,
// zero-allocation record path).
type LatencyHist = obs.Hist

// Variant selects the NVMe Streamer's payload buffer memory (paper §4.3).
type Variant = streamer.Variant

// TenantConfig describes one tenant of a virtualized Streamer: its isolated
// LBA window, DRR weight, optional token-bucket rate limit, and admission
// cap. See streamer.TenantConfig for field semantics and defaults.
type TenantConfig = streamer.TenantConfig

// TenantStats is one tenant's per-tenant counter snapshot.
type TenantStats = streamer.TenantStats

// The three Streamer variants.
const (
	URAM        = streamer.URAM
	OnboardDRAM = streamer.OnboardDRAM
	HostDRAM    = streamer.HostDRAM
)

// Options configures a simulated system.
type Options struct {
	// Variant picks the Streamer buffer memory. Default URAM.
	Variant Variant
	// QueueDepth is the NVMe submission queue / reorder buffer depth.
	// Default 64, as in the paper.
	QueueDepth int
	// IOQueues shards the Streamer's submission path across this many NVMe
	// I/O queue pairs (1..8) with round-robin placement; the reorder buffer
	// stays global so retirement remains strictly in order. 0 or 1 keeps
	// the paper's single-queue model with its exact event timeline.
	IOQueues int
	// DoorbellBatch coalesces doorbell writes: SQ tail doorbells ring once
	// per DoorbellBatch submitted commands (with the final tail) and CQ-head
	// updates post once per drained run of up to DoorbellBatch completions.
	// 0 or 1 rings per command, as in the paper.
	DoorbellBatch int
	// OutOfOrder enables the §7 out-of-order retirement extension.
	OutOfOrder bool
	// KernelWorkers selects the event-loop scheduler. 0 or 1 runs the plain
	// serial kernel — the exact paper timeline, byte for byte. Values above
	// 1 run the system under the sharded conservative-parallel scheduler
	// (sim.Shard) with that many workers. A single System is one
	// synchronously-coupled PCIe fabric and therefore one shard domain, so
	// extra workers cannot speed it up; the knob exists so rig-level
	// parallelism (bench.SetParallelism, sharding *across* systems) and
	// domain-level workers (sharding *within* a rig's event loop) compose,
	// and rigs with genuinely partitionable topology — the casestudy's
	// network front end, bench.KernelSweep's ethernet→pcie→nvme chain — get
	// real concurrency. Results are identical at any worker count.
	KernelWorkers int
	// Functional moves real payload bytes through the whole stack
	// (Ethernet frames, PCIe TLPs, PRP lists, NAND media). Default true —
	// turn it off for large timing-only experiments.
	Functional *bool
	// Seed makes otherwise-default stochastic models (NAND latency
	// jitter) deterministic per run.
	Seed uint64
	// Faults, when non-nil, attaches a deterministic NVMe fault injector
	// to the SSD and enables the Streamer's retry/timeout recovery.
	Faults *FaultOptions
	// Trace, when non-nil, enables per-command span tracing and per-stage
	// latency histograms. Without it the pipeline is uninstrumented and
	// pays nothing.
	Trace *TraceOptions
	// Tenants, when non-empty, virtualizes the Streamer: each tenant gets
	// its own command/data stream pair, an isolated LBA window enforced on
	// every submission, a weighted share of the device under deficit
	// round-robin scheduling, and optional token-bucket rate limiting with
	// admission control. Tenant traffic goes through Handle.TenantRead /
	// TenantWrite; the raw Handle.Read / Write entry points panic, since
	// they would bypass the isolation windows.
	Tenants []TenantConfig
	// Cluster, when non-nil, scales the system out: Nodes full
	// streamer+SSD stacks behind the simulated Ethernet switch, a
	// consistent-hash ring sharding the logical byte space with
	// replication factor Replication, quorum writes, read failover, and
	// background re-replication. Handle.Read / Write then address the
	// cluster's replicated logical space; Options.Faults and
	// Options.Tenants are incompatible with cluster mode (use
	// ClusterOptions.NodeFaults for per-node injection).
	Cluster *ClusterOptions
	// Serve, when non-nil, attaches the open-loop RPC serving tier: a
	// simulated client fleet sends length-prefixed read/write capsules over
	// the 100 G link into a frame decoder, connection table and dispatch
	// queue in front of the Streamer. System.Serve runs the workload to
	// quiescence and returns the fleet-side report. With Options.Tenants
	// set, requests are stamped with tenant IDs and dispatched through the
	// virtualized hub, one lane per tenant. Incompatible with
	// Options.Cluster. Under KernelWorkers > 1 the fleet runs in its own
	// shard domain joined to the FPGA side by wire-latency edges; reports
	// are identical at any worker count.
	Serve *ServeOptions
}

// ServePhase is one step of the serving workload's burst schedule: the
// baseline arrival rate is multiplied by RateScale for DurationNs of
// simulated time, and the schedule cycles.
type ServePhase struct {
	RateScale  float64
	DurationNs int64
}

// ServeOptions configures Options.Serve, the open-loop serving tier. The
// zero value of every field selects the default noted on it, so
// Options{Serve: &ServeOptions{}} is a complete serving system.
type ServeOptions struct {
	// Clients is the simulated client population (default 10 000).
	Clients int
	// RatePerSec is the aggregate open-loop arrival rate before phase
	// scaling (default 500 000/s).
	RatePerSec float64
	// Requests is the total arrivals to generate (default 4000).
	Requests int64
	// IOBytes is the per-request transfer size, a positive multiple of
	// 512 (default 4 KiB).
	IOBytes int64
	// SpanBytes is the logical byte span requests address (default
	// 256 MiB). With tenants it must fit the tenant LBA windows.
	SpanBytes int64
	// ReadFraction is the probability a request is a read; 0 selects the
	// default 0.7.
	ReadFraction float64
	// ZipfTheta / ZipfBuckets shape the zipfian address distribution
	// (defaults 0.9 and 64).
	ZipfTheta   float64
	ZipfBuckets int
	// Phases is the burst schedule; empty means a flat rate.
	Phases []ServePhase
	// CloseProbability is the per-request chance the client closes its
	// connection afterwards (session churn). Default 0: connections stay
	// open.
	CloseProbability float64
	// Seed drives the workload generator (0 selects a fixed default).
	Seed uint64
	// Server tuning, 0 = package defaults: dispatch-queue depth and batch,
	// capsules coalesced per Ethernet frame, and the per-fleet backlog
	// bound past which paused arrivals are shed.
	DispatchDepth int
	DispatchBatch int
	FrameBatch    int
	ClientBacklog int
}

// ServeReport is the serving tier's end-of-run accounting: arrivals
// generated/sent/shed, completions and goodput, due→response latency
// percentiles, dispatch-queue and connection-table high-water marks, the
// connection-state footprint in bytes, and 802.3x pause activity.
type ServeReport = serve.Report

// serveSeedDefault keeps default ServeOptions runs aligned with the bench
// suite's serve sweep.
const serveSeedDefault = 0x5ac5

// build translates the public options into the internal workload spec and
// tier config, filling defaults. Validation happens in serve.New.
func (o *ServeOptions) build(tenants int) (workload.OpenLoopSpec, serve.Config) {
	spec := workload.OpenLoopSpec{
		Clients:      o.Clients,
		RatePerSec:   o.RatePerSec,
		Ops:          o.Requests,
		ReadFraction: o.ReadFraction,
		IOBytes:      o.IOBytes,
		SpanBytes:    o.SpanBytes,
		ZipfTheta:    o.ZipfTheta,
		ZipfBuckets:  o.ZipfBuckets,
		CloseProb:    o.CloseProbability,
		Seed:         o.Seed,
		Tenants:      tenants,
	}
	if spec.Clients == 0 {
		spec.Clients = 10_000
	}
	if spec.RatePerSec == 0 {
		spec.RatePerSec = 500e3
	}
	if spec.Ops == 0 {
		spec.Ops = 4000
	}
	if spec.ReadFraction == 0 {
		spec.ReadFraction = 0.7
	}
	if spec.IOBytes == 0 {
		spec.IOBytes = 4 * sim.KiB
	}
	if spec.SpanBytes == 0 {
		spec.SpanBytes = 256 * sim.MiB
	}
	if spec.ZipfTheta == 0 {
		spec.ZipfTheta = 0.9
	}
	if spec.ZipfBuckets == 0 {
		spec.ZipfBuckets = 64
	}
	if spec.Seed == 0 {
		spec.Seed = serveSeedDefault
	}
	for _, ph := range o.Phases {
		spec.Phases = append(spec.Phases, workload.PhaseSpec{
			RateScale: ph.RateScale,
			Duration:  sim.Time(ph.DurationNs),
		})
	}
	return spec, serve.Config{
		DispatchDepth: o.DispatchDepth,
		DispatchBatch: o.DispatchBatch,
		FrameBatch:    o.FrameBatch,
		ClientBacklog: o.ClientBacklog,
	}
}

// ClusterOptions configures Options.Cluster: a replicated multi-node
// cluster over the simulated network.
type ClusterOptions struct {
	// Nodes is the node count (>= 2); Replication the copies per chunk
	// (1 <= R <= Nodes); Quorum the replica acks a write needs before
	// acknowledging the caller (1 <= Q <= R).
	Nodes       int
	Replication int
	Quorum      int
	// ChunkBytes is the placement/repair granule, a positive multiple of
	// 4 KiB up to 4 MiB (default 256 KiB).
	ChunkBytes int64
	// RequestTimeoutNs bounds one coordinator->node capsule exchange
	// (default 10 ms); DeadAfter consecutive failures declare a node dead
	// (default 2); ProbeIntervalNs/ProbeLimit bound the rejoin prober
	// (defaults 2 ms, 25).
	RequestTimeoutNs int64
	DeadAfter        int
	ProbeIntervalNs  int64
	ProbeLimit       int
	// NodeFaults attaches a per-node NVMe fault injector (keyed by node
	// index); a node's entry also arms its Streamer recovery ladder with
	// the same knobs as Options.Faults.
	NodeFaults map[int]*FaultOptions
	// Partitions lists link-level fault windows against nodes.
	Partitions []LinkPartition
}

// LinkPartition drops or delays frames to/from one node for a window of
// simulated time — a network fault, as opposed to the NVMe-level faults of
// FaultOptions.
type LinkPartition struct {
	// Node is the partitioned node.
	Node int
	// FromNs/UntilNs bound the window ([From, Until); UntilNs 0 = forever).
	FromNs, UntilNs int64
	// Drop discards matched frames; otherwise they arrive DelayNs late.
	Drop    bool
	DelayNs int64
	// Probability/Nth/Count select frames inside the window (all zero =
	// every frame).
	Probability float64
	Nth, Count  int64
	// ToNode affects frames the node receives, FromNode frames it sends;
	// neither set means both directions.
	ToNode, FromNode bool
}

// TraceOptions configures the observability layer.
type TraceOptions struct {
	// SpanLimit caps the completed spans retained for export (the first
	// SpanLimit to finish; histograms keep aggregating past the cap).
	// Default obs.DefaultSpanLimit.
	SpanLimit int
	// Boundary additionally attaches a PCIe transaction tracer at the
	// staging-buffer boundary — the position of the paper's §5.2 ILA —
	// exposed through BoundaryTrace.
	Boundary bool
}

// FaultOptions configures seed-driven NVMe fault injection plus the
// Streamer's recovery machinery. The zero value of each field selects a
// sensible default, so enabling recovery without faults is just
// Options{Faults: &FaultOptions{}}.
type FaultOptions struct {
	// Seed drives the injector's probability decisions. Default 1.
	Seed uint64
	// ReadErrorRate / WriteErrorRate are per-command probabilities of the
	// device failing a read/write with a retryable data-transfer error.
	ReadErrorRate  float64
	WriteErrorRate float64
	// CQELossRate is the per-completion probability of the CQE being
	// dropped on the wire, exercising the watchdog path.
	CQELossRate float64
	// CmdTimeoutNs is the per-command watchdog deadline. Default 50 ms; it
	// must comfortably exceed the device's worst-case completion latency.
	CmdTimeoutNs int64
	// MaxRetries bounds resubmissions per command. Default 3; use -1 to
	// abort on the first failure.
	MaxRetries int
	// RetryBackoffNs is the base backoff before a resubmission, doubled
	// per attempt. Default 10 µs.
	RetryBackoffNs int64

	// Controller-level failure injection. Any of the three enables the
	// Streamer's crash-recovery ladder (circuit breaker, controller reset,
	// in-flight replay) alongside the per-command machinery above.

	// CrashEveryNCmds crashes the controller (latches CSTS.CFS, stops
	// fetching and completing) as every Nth I/O command reaches
	// completion; the crashed command's data has moved but its CQE is
	// withheld, so replay is idempotent. Values below 2 are rejected: a
	// controller that dies at every command can never retire one, so the
	// workload could not make progress.
	CrashEveryNCmds int64
	// HangAtCommand freezes the command engine as the Nth I/O command
	// completes, for HangDurationNs, then revives it. Fires once.
	HangAtCommand int64
	// HangDurationNs is the hang length. Default 5 ms.
	HangDurationNs int64
	// RemoveAtCommand surprise-removes the controller at the Nth I/O
	// completion: registers float all-1s and no reset revives it. Fires
	// once.
	RemoveAtCommand int64

	// Recovery-ladder knobs (apply when any controller fault above is set,
	// or when explicitly non-zero).

	// CrashDetectTimeoutNs is the controller-status poll interval — how
	// quickly a latched fatal status or a removal is noticed without
	// waiting out the command deadline. Default 1 ms.
	CrashDetectTimeoutNs int64
	// BreakerThreshold is the consecutive-timeout count that trips the
	// circuit breaker. Default 2.
	BreakerThreshold int
	// MaxResets bounds controller reset attempts per breaker trip before
	// the controller is declared dead. Default 2; use -1 for 0 (any trip
	// is terminal).
	MaxResets int
}

// wantsBreaker reports whether the options ask for the crash-recovery
// ladder — either by injecting controller-level faults or by setting one of
// its knobs explicitly.
func (f *FaultOptions) wantsBreaker() bool {
	return f.CrashEveryNCmds > 0 || f.HangAtCommand > 0 || f.RemoveAtCommand > 0 ||
		f.CrashDetectTimeoutNs > 0 || f.BreakerThreshold > 0 || f.MaxResets != 0
}

// System is an assembled simulation: Alveo U280 + host + Samsung 990 PRO
// model + one NVMe Streamer, fully initialized (admin queue brought up,
// I/O queues created inside the Streamer window, IOMMU granted, doorbells
// programmed).
type System struct {
	kernel   *sim.Kernel
	shard    *sim.Shard // nil when KernelWorkers <= 1 (plain serial kernel)
	plat     *tapasco.Platform
	dev      *nvme.Device
	st       *streamer.Streamer
	client   *streamer.Client
	injector *fault.Injector     // nil unless Options.Faults was set
	tracer   *obs.Tracer         // nil unless Options.Trace was set
	boundary *pcie.Tracer        // nil unless Options.Trace.Boundary was set
	hub      *streamer.TenantHub // nil unless Options.Tenants was set
	tclients []*streamer.TenantClient
	cluster  *cluster.Cluster // nil unless Options.Cluster was set
	serve    *serve.Tier      // nil unless Options.Serve was set
}

// systemBARWindow is where enumeration places discovered device BARs.
const systemBARWindow = 0x10_0000_0000

// NewSystem builds and initializes a system. The SSD's register BAR is not
// hard-coded: the host enumerates the fabric's config space and locates
// the device by its NVMe class code, the way a real kernel probes.
func NewSystem(opts Options) (*System, error) {
	functional := true
	if opts.Functional != nil {
		functional = *opts.Functional
	}
	if opts.Faults != nil && opts.Faults.CrashEveryNCmds == 1 {
		return nil, fmt.Errorf("snacc: CrashEveryNCmds must be >= 2 (a controller that crashes at every command never completes one)")
	}
	if opts.IOQueues < 0 || opts.IOQueues > streamer.MaxIOQueues {
		return nil, fmt.Errorf("snacc: IOQueues must be between 0 and %d, got %d", streamer.MaxIOQueues, opts.IOQueues)
	}
	if opts.DoorbellBatch < 0 {
		return nil, fmt.Errorf("snacc: DoorbellBatch must be non-negative, got %d", opts.DoorbellBatch)
	}
	if opts.KernelWorkers < 0 {
		return nil, fmt.Errorf("snacc: KernelWorkers must be non-negative, got %d", opts.KernelWorkers)
	}
	if opts.Cluster != nil {
		if opts.Serve != nil {
			return nil, fmt.Errorf("snacc: Options.Serve is incompatible with Options.Cluster")
		}
		return newClusterSystem(opts, functional)
	}
	var (
		shard    *sim.Shard
		fleetK   *sim.Kernel // serve client fleet's domain kernel (sharded runs)
		toServer *sim.Edge
		toFleet  *sim.Edge
	)
	k := sim.NewKernel()
	if opts.KernelWorkers > 1 {
		shard = sim.NewShard(opts.KernelWorkers)
		sysD := shard.AddDomain("system")
		k = sysD.Kernel()
		if opts.Serve != nil {
			// The client fleet only talks to the FPGA side through the
			// Ethernet link, so it gets its own domain with wire-latency
			// lookahead on both edges.
			fleet := shard.AddDomain("clients")
			fleetK = fleet.Kernel()
			look := ethernet.DefaultConfig().EdgeLookahead()
			toServer = shard.MustConnect(fleet, sysD, look)
			toFleet = shard.MustConnect(sysD, fleet, look)
		}
	}
	pl := tapasco.NewPlatform(k, tapasco.DefaultU280())
	devCfg := nvme.DefaultConfig("ssd0", 0) // BAR assigned by enumeration
	devCfg.Functional = functional
	if opts.Seed != 0 {
		devCfg.NAND.Seed = opts.Seed
	}
	dev := nvme.New(k, pl.Fabric, devCfg)
	stCfg := streamer.DefaultConfig("snacc0", 0, opts.Variant)
	stCfg.Functional = functional
	stCfg.OutOfOrder = opts.OutOfOrder
	if opts.QueueDepth > 0 {
		stCfg.QueueDepth = opts.QueueDepth
	}
	stCfg.IOQueues = opts.IOQueues
	stCfg.DoorbellBatch = opts.DoorbellBatch
	if opts.Faults != nil {
		applyFaultRecovery(&stCfg, opts.Faults)
	}
	st := pl.AddStreamer(stCfg)
	var injector *fault.Injector
	if opts.Faults != nil {
		injector = buildInjector(opts.Faults)
		injector.Attach(dev)
	}
	var tracer *obs.Tracer
	var boundary *pcie.Tracer
	if opts.Trace != nil {
		tracer = obs.NewTracer(opts.Trace.SpanLimit)
		st.SetTracer(tracer)
		// The device reports fetch/execute events by qid/cid; the Streamer
		// owns I/O queues 1..IOQueues (see AttachStreamer below) and maps
		// the CID — unique across its queues, it is the reorder-buffer
		// slot — back to the command.
		dev.SetCmdObserver(func(qid, cid uint16, stage obs.Stage, at sim.Time) {
			if qid >= 1 && int(qid) <= st.IOQueues() {
				st.OnDeviceEvent(cid, stage, at)
			}
		})
		if opts.Trace.Boundary {
			boundary = attachBoundaryTracer(k, pl, st)
		}
	}
	nvmes := pcie.FindByClass(pl.Fabric.Enumerate(systemBARWindow), pcie.ClassNVMe)
	if len(nvmes) != 1 {
		return nil, fmt.Errorf("snacc: enumeration found %d NVMe controllers, want 1", len(nvmes))
	}
	drv := tapasco.NewDriver(pl, nvmes[0].Name, nvmes[0].BARBase)
	var initErr error
	done := false
	k.Spawn("init", func(p *sim.Proc) {
		if err := drv.InitController(p); err != nil {
			initErr = err
			return
		}
		if err := drv.AttachStreamer(p, st, 1); err != nil {
			initErr = err
			return
		}
		done = true
	})
	if shard != nil {
		shard.Run(0)
	} else {
		k.Run(0)
	}
	if initErr != nil {
		return nil, initErr
	}
	if !done {
		return nil, fmt.Errorf("snacc: initialization stalled")
	}
	sys := &System{kernel: k, shard: shard, plat: pl, dev: dev, st: st,
		client: streamer.NewClient(st), injector: injector,
		tracer: tracer, boundary: boundary}
	if len(opts.Tenants) > 0 {
		hub, err := streamer.NewTenantHub(k, st, opts.Tenants, streamer.HubOptions{})
		if err != nil {
			return nil, err
		}
		sys.hub = hub
		for i := 0; i < hub.Tenants(); i++ {
			sys.tclients = append(sys.tclients, hub.Client(i))
		}
	}
	if opts.Serve != nil {
		spec, cfg := opts.Serve.build(len(opts.Tenants))
		var backend serve.Backend
		if sys.hub != nil {
			backend = serve.NewHubBackend(sys.hub)
		} else {
			backend = serve.NewStreamerBackend(sys.client)
		}
		var tier *serve.Tier
		var err error
		if shard != nil {
			tier, err = serve.NewCross(fleetK, k, toServer, toFleet, cfg, spec, backend)
		} else {
			tier, err = serve.New(k, cfg, spec, backend)
		}
		if err != nil {
			return nil, err
		}
		sys.serve = tier
	}
	return sys, nil
}

// attachBoundaryTracer installs a PCIe tracer at the staging-buffer
// boundary: the card port for the on-card variants (filtered to the payload
// window), the host port for the host-DRAM variant — exactly where the
// paper's §5.2 ILA sits.
func attachBoundaryTracer(k *sim.Kernel, pl *tapasco.Platform, st *streamer.Streamer) *pcie.Tracer {
	tr := pcie.NewTracer(k)
	cfg := st.Config()
	if cfg.Variant != streamer.HostDRAM {
		base := cfg.WindowBase
		span := uint64(cfg.ReadBufBytes + cfg.WriteBufBytes)
		if cfg.Variant == streamer.URAM {
			span = uint64(cfg.ReadBufBytes)
		}
		tr.Filter = func(addr uint64, n int64) bool {
			return addr >= base && addr < base+span && n >= 4096
		}
		pl.Card.AttachTracer(tr)
		return tr
	}
	hostCfg := pl.Config().Host
	tr.Filter = func(addr uint64, n int64) bool {
		return addr >= hostCfg.MemBase && n >= 4096
	}
	pl.Host.Port.AttachTracer(tr)
	return tr
}

// applyFaultRecovery maps FaultOptions onto the Streamer's recovery knobs,
// filling in the documented defaults.
func applyFaultRecovery(cfg *streamer.Config, f *FaultOptions) {
	cfg.CmdTimeout = 50 * sim.Millisecond
	if f.CmdTimeoutNs > 0 {
		cfg.CmdTimeout = sim.Time(f.CmdTimeoutNs)
	}
	switch {
	case f.MaxRetries < 0:
		cfg.MaxRetries = 0
	case f.MaxRetries == 0:
		cfg.MaxRetries = 3
	default:
		cfg.MaxRetries = f.MaxRetries
	}
	cfg.RetryBackoff = 10 * sim.Microsecond
	if f.RetryBackoffNs > 0 {
		cfg.RetryBackoff = sim.Time(f.RetryBackoffNs)
	}
	if !f.wantsBreaker() {
		return
	}
	cfg.BreakerThreshold = 2
	if f.BreakerThreshold > 0 {
		cfg.BreakerThreshold = f.BreakerThreshold
	}
	switch {
	case f.MaxResets < 0:
		cfg.MaxResets = 0
	case f.MaxResets == 0:
		cfg.MaxResets = 2
	default:
		cfg.MaxResets = f.MaxResets
	}
	cfg.CFSPollInterval = sim.Millisecond
	if f.CrashDetectTimeoutNs > 0 {
		cfg.CFSPollInterval = sim.Time(f.CrashDetectTimeoutNs)
	}
}

// buildInjector translates FaultOptions rates into injector rules.
func buildInjector(f *FaultOptions) *fault.Injector {
	seed := f.Seed
	if seed == 0 {
		seed = 1
	}
	in := fault.NewInjector(seed)
	if f.ReadErrorRate > 0 {
		in.Add(fault.Rule{Name: "read-errors", Kind: fault.StatusError,
			Opcode: nvme.OpRead, Probability: f.ReadErrorRate,
			Status: nvme.StatusDataTransferError})
	}
	if f.WriteErrorRate > 0 {
		in.Add(fault.Rule{Name: "write-errors", Kind: fault.StatusError,
			Opcode: nvme.OpWrite, Probability: f.WriteErrorRate,
			Status: nvme.StatusDataTransferError})
	}
	if f.CQELossRate > 0 {
		in.Add(fault.Rule{Name: "cqe-loss", Kind: fault.DropCQE,
			Opcode: fault.OpAny, Probability: f.CQELossRate})
	}
	if f.CrashEveryNCmds > 0 {
		in.Add(fault.Rule{Name: "ctrl-crash", Kind: fault.CrashCtrl,
			Opcode: fault.OpAny, Nth: f.CrashEveryNCmds})
	}
	if f.HangAtCommand > 0 {
		hang := 5 * sim.Millisecond
		if f.HangDurationNs > 0 {
			hang = sim.Time(f.HangDurationNs)
		}
		in.Add(fault.Rule{Name: "ctrl-hang", Kind: fault.HangCtrl,
			Opcode: fault.OpAny, Nth: f.HangAtCommand, Count: 1, Delay: hang})
	}
	if f.RemoveAtCommand > 0 {
		in.Add(fault.Rule{Name: "ctrl-remove", Kind: fault.RemoveCtrl,
			Opcode: fault.OpAny, Nth: f.RemoveAtCommand, Count: 1})
	}
	return in
}

// newClusterSystem assembles a replicated multi-node system behind the
// simulated Ethernet switch (Options.Cluster).
func newClusterSystem(opts Options, functional bool) (*System, error) {
	if len(opts.Tenants) > 0 {
		return nil, fmt.Errorf("snacc: Options.Tenants is incompatible with Options.Cluster")
	}
	if opts.Faults != nil {
		return nil, fmt.Errorf("snacc: Options.Faults is incompatible with Options.Cluster (use ClusterOptions.NodeFaults)")
	}
	if opts.Trace != nil && opts.Trace.Boundary {
		return nil, fmt.Errorf("snacc: Trace.Boundary is not supported in cluster mode")
	}
	co := opts.Cluster
	for nd, f := range co.NodeFaults {
		if f != nil && f.CrashEveryNCmds == 1 {
			return nil, fmt.Errorf("snacc: node %d: CrashEveryNCmds must be >= 2", nd)
		}
	}
	ccfg := cluster.DefaultConfig(co.Nodes, co.Replication, co.Quorum)
	ccfg.ChunkBytes = co.ChunkBytes
	ccfg.KernelWorkers = opts.KernelWorkers
	ccfg.Functional = functional
	ccfg.Seed = opts.Seed
	ccfg.Variant = opts.Variant
	ccfg.QueueDepth = opts.QueueDepth
	ccfg.RequestTimeout = sim.Time(co.RequestTimeoutNs)
	ccfg.DeadAfter = co.DeadAfter
	ccfg.ProbeInterval = sim.Time(co.ProbeIntervalNs)
	ccfg.ProbeLimit = co.ProbeLimit
	if opts.Trace != nil {
		ccfg.TraceSpans = true
		ccfg.SpanLimit = opts.Trace.SpanLimit
	}
	if len(co.NodeFaults) > 0 {
		faults := co.NodeFaults
		ccfg.NodeInjector = func(node int) *fault.Injector {
			f := faults[node]
			if f == nil {
				return nil
			}
			return buildInjector(f)
		}
		ccfg.StreamerTune = func(node int, cfg *streamer.Config) {
			if f := faults[node]; f != nil {
				applyFaultRecovery(cfg, f)
			}
		}
	}
	for _, pt := range co.Partitions {
		ccfg.Partitions = append(ccfg.Partitions, cluster.Partition{
			Node:        pt.Node,
			From:        sim.Time(pt.FromNs),
			Until:       sim.Time(pt.UntilNs),
			Drop:        pt.Drop,
			Delay:       sim.Time(pt.DelayNs),
			Probability: pt.Probability,
			Nth:         pt.Nth,
			Count:       pt.Count,
			ToNode:      pt.ToNode,
			FromNode:    pt.FromNode,
		})
	}
	cl, err := cluster.New(ccfg)
	if err != nil {
		return nil, err
	}
	return &System{cluster: cl}, nil
}

// MustNewSystem is NewSystem, panicking on error (examples, tests).
func MustNewSystem(opts Options) *System {
	s, err := NewSystem(opts)
	if err != nil {
		panic(err)
	}
	return s
}

// Handle drives the Streamer from inside the simulation, the way a user
// PE drives its four AXI4-Stream interfaces.
type Handle struct {
	p   *sim.Proc
	sys *System
}

// Execute runs fn as a simulation process and advances simulated time
// until it (and everything it triggered) completes, under whichever
// scheduler Options.KernelWorkers selected.
func (s *System) Execute(fn func(h *Handle)) {
	if s.cluster != nil {
		s.cluster.Execute(func(p *sim.Proc) {
			fn(&Handle{p: p, sys: s})
		})
		return
	}
	s.kernel.Spawn("app", func(p *sim.Proc) {
		fn(&Handle{p: p, sys: s})
	})
	if s.shard != nil {
		s.shard.Run(0)
	} else {
		s.kernel.Run(0)
	}
}

// Serve runs the configured open-loop serving workload (Options.Serve) to
// quiescence and returns the fleet's report. The client fleet starts at the
// current simulated time, sends every generated arrival (or sheds it at the
// paused client under overload) and the call returns once the last response
// has drained. A system serves once; a second call reports an error.
func (s *System) Serve() (ServeReport, error) {
	if s.serve == nil {
		return ServeReport{}, fmt.Errorf("snacc: Serve requires Options.Serve")
	}
	now := s.kernel.Now()
	if s.shard != nil {
		now = s.shard.Now()
	}
	if err := s.serve.Start(now); err != nil {
		return ServeReport{}, err
	}
	if s.shard != nil {
		s.shard.Run(0)
	} else {
		s.kernel.Run(0)
	}
	return s.serve.Report(), nil
}

// KernelWorkers returns the sharded scheduler's worker budget, or 1 when
// the system runs on the plain serial kernel.
func (s *System) KernelWorkers() int {
	if s.cluster != nil {
		return s.cluster.KernelWorkers()
	}
	if s.shard == nil {
		return 1
	}
	return s.shard.Workers()
}

// Now returns the current simulated time in nanoseconds.
func (h *Handle) Now() int64 { return int64(h.p.Now()) }

// client returns the raw (untenanted) streamer client, panicking when the
// system is virtualized — raw access would bypass the tenant LBA windows.
func (h *Handle) client() *streamer.Client {
	if h.sys.hub != nil {
		panic("snacc: Streamer is virtualized (Options.Tenants); use TenantRead/TenantWrite")
	}
	return h.sys.client
}

// tenant returns tenant i's client, panicking when the system has no
// tenants or the index is out of range.
func (h *Handle) tenant(i int) *streamer.TenantClient {
	if h.sys.hub == nil {
		panic("snacc: no tenants configured (set Options.Tenants)")
	}
	if i < 0 || i >= len(h.sys.tclients) {
		panic(fmt.Sprintf("snacc: tenant %d out of range (%d configured)", i, len(h.sys.tclients)))
	}
	return h.sys.tclients[i]
}

// Write stores data at the given device byte address (512-aligned, length
// a multiple of 512) and waits for the Streamer's response token. In
// cluster mode the address is a cluster-logical byte address and the write
// replicates to R nodes, acknowledging at the configured quorum.
func (h *Handle) Write(addr uint64, data []byte) {
	if c := h.sys.cluster; c != nil {
		if err := c.Write(h.p, addr, data); err != nil {
			panic(fmt.Sprintf("snacc: cluster write %d@%#x: %v", len(data), addr, err))
		}
		return
	}
	h.client().Write(h.p, addr, int64(len(data)), data)
}

// WriteTimed performs a timing-only write of n bytes.
func (h *Handle) WriteTimed(addr uint64, n int64) {
	if c := h.sys.cluster; c != nil {
		if err := c.WriteTimed(h.p, addr, n); err != nil {
			panic(fmt.Sprintf("snacc: cluster write %d@%#x: %v", n, addr, err))
		}
		return
	}
	h.client().Write(h.p, addr, n, nil)
}

// Read returns n bytes from the given device byte address. In cluster mode
// the read is served by the chunk's primary replica, failing over to the
// others on error or timeout.
func (h *Handle) Read(addr uint64, n int64) []byte {
	if c := h.sys.cluster; c != nil {
		data, err := c.Read(h.p, addr, n)
		if err != nil {
			panic(fmt.Sprintf("snacc: cluster read %d@%#x: %v", n, addr, err))
		}
		return data
	}
	return h.client().Read(h.p, addr, n)
}

// ReadTimed performs a timing-only read of n bytes.
func (h *Handle) ReadTimed(addr uint64, n int64) {
	if c := h.sys.cluster; c != nil {
		if _, err := c.Read(h.p, addr, n); err != nil {
			panic(fmt.Sprintf("snacc: cluster read %d@%#x: %v", n, addr, err))
		}
		return
	}
	c := h.client()
	c.ReadAsync(h.p, addr, n)
	c.ConsumeRead(h.p)
}

// ReadErr is Read surfacing terminal NVMe errors (after the Streamer has
// exhausted its retries) instead of panicking on the short delivery. The
// returned data covers only the pieces that succeeded.
func (h *Handle) ReadErr(addr uint64, n int64) ([]byte, error) {
	if c := h.sys.cluster; c != nil {
		return c.Read(h.p, addr, n)
	}
	return h.client().ReadErr(h.p, addr, n)
}

// WriteErr is Write surfacing the worst terminal NVMe status across the
// write's pieces via the response token's error flag (in cluster mode, a
// quorum failure).
func (h *Handle) WriteErr(addr uint64, data []byte) error {
	if c := h.sys.cluster; c != nil {
		return c.Write(h.p, addr, data)
	}
	return h.client().WriteErr(h.p, addr, int64(len(data)), data)
}

// TenantWrite stores data at a tenant-relative device byte address through
// tenant's virtual stream pair. Addresses are relative to the tenant's LBA
// window; out-of-window or unaligned requests return the per-tenant
// rejection error without touching the device.
func (h *Handle) TenantWrite(tenant int, addr uint64, data []byte) error {
	return h.tenant(tenant).WriteErr(h.p, addr, int64(len(data)), data)
}

// TenantWriteTimed is a timing-only TenantWrite of n bytes.
func (h *Handle) TenantWriteTimed(tenant int, addr uint64, n int64) error {
	return h.tenant(tenant).WriteErr(h.p, addr, n, nil)
}

// TenantRead returns n bytes from a tenant-relative device byte address,
// surfacing window rejections and terminal NVMe errors.
func (h *Handle) TenantRead(tenant int, addr uint64, n int64) ([]byte, error) {
	return h.tenant(tenant).ReadErr(h.p, addr, n)
}

// Sleep advances this process by d nanoseconds of simulated time.
func (h *Handle) Sleep(d int64) { h.p.Sleep(sim.Time(d)) }

// Spans returns the completed command spans traced so far (nil without
// Options.Trace).
func (h *Handle) Spans() []Span { return h.sys.Spans() }

// Trace returns the span tracer, or nil when the system was built without
// Options.Trace. The tracer exposes per-stage latency histograms, span
// accounting, and the global breaker/reset/death event timeline.
func (s *System) Trace() *obs.Tracer { return s.tracer }

// Spans returns the completed command spans traced so far, in completion
// order (nil without Options.Trace). In cluster mode the spans of every
// node tracer are concatenated in node order, each stamped with its node
// identity (Span.Node).
func (s *System) Spans() []Span {
	if s.cluster != nil {
		return s.cluster.Spans()
	}
	return s.tracer.Spans()
}

// StageLatency returns the latency histogram of the transition into stage
// st, or nil without Options.Trace.
func (s *System) StageLatency(st SpanStage) *LatencyHist { return s.tracer.StageHist(st) }

// CommandLatency returns the end-to-end (accepted → retired) latency
// histogram for the given direction, or nil without Options.Trace.
func (s *System) CommandLatency(write bool) *LatencyHist { return s.tracer.E2E(write) }

// BoundaryTrace returns the staging-buffer-boundary PCIe tracer, or nil
// unless Options.Trace.Boundary was set.
func (s *System) BoundaryTrace() *pcie.Tracer { return s.boundary }

// Stats is a snapshot of system counters.
type Stats struct {
	// Commands submitted/retired by the Streamer and errors seen.
	CommandsSubmitted int64
	CommandsRetired   int64
	CommandErrors     int64
	// Recovery accounting: bounded resubmissions, watchdog expirations,
	// commands failed terminally, and malformed/duplicate completions.
	CommandRetries  int64
	CommandTimeouts int64
	CommandAborts   int64
	ProtocolErrors  int64
	// FaultsInjected counts injector firings (0 without Options.Faults).
	FaultsInjected int64
	// Crash-recovery ladder accounting: breaker trips, controller resets
	// issued, in-flight commands replayed after a reset, cumulative
	// nanoseconds from breaker trip to resumed submission, and whether the
	// controller was declared dead.
	BreakerTrips     int64
	ControllerResets int64
	CommandsReplayed int64
	RecoveryTimeNs   int64
	ControllerDead   bool
	// Multi-queue / doorbell-coalescing accounting: total doorbell writes
	// posted over PCIe (SQ tail + CQ head), coalesced CQ-head batches, and
	// the per-I/O-queue in-flight high-water marks (one entry per queue
	// pair; a single-entry slice in the default configuration).
	DoorbellWrites   int64
	CQBatches        int64
	IOQueueDepthPeak []int64
	// Span accounting (all 0 without Options.Trace): spans opened and
	// closed (equal once the workload drains — the core tracing
	// invariant), completed spans dropped past the retention limit, and
	// pipeline events that arrived after their command resolved.
	SpansOpened     int64
	SpansClosed     int64
	SpansDropped    int64
	TraceLateEvents int64
	// Payload byte counters.
	BytesToPE   int64
	BytesFromPE int64
	// PCIe payload delivered into each port.
	PCIeCardRx int64
	PCIeSSDRx  int64
	PCIeHostRx int64
	// Simulated time elapsed since the system was built.
	SimTime int64
	// SimEvents counts discrete-event executions (simulator work).
	SimEvents uint64
	// Tenants holds one per-tenant counter snapshot per configured tenant
	// (nil without Options.Tenants). Completed tenant payload sums match the
	// global BytesToPE / BytesFromPE counters.
	Tenants []TenantStats
	// Scale-out accounting (all zero without Options.Cluster): node death
	// declarations and probed rejoins, read failovers, payload copied by
	// background re-replication, cumulative nanoseconds any chunk held
	// fewer live replicas than the cluster could sustain, the current
	// under-replicated chunk count (0 once repair has caught up), and the
	// nodes whose controllers are terminally dead.
	NodeDeaths            int64
	NodeRejoins           int64
	Failovers             int64
	ReReplicatedBytes     int64
	DegradedWindowNs      int64
	UnderReplicatedChunks int64
	DeadNodes             []int
}

// Stats snapshots the system counters.
func (s *System) Stats() Stats {
	if s.cluster != nil {
		return s.clusterStats()
	}
	return Stats{
		CommandsSubmitted: s.st.CommandsSubmitted(),
		CommandsRetired:   s.st.CommandsRetired(),
		CommandErrors:     s.st.CommandErrors(),
		CommandRetries:    s.st.CommandRetries(),
		CommandTimeouts:   s.st.CommandTimeouts(),
		CommandAborts:     s.st.CommandAborts(),
		ProtocolErrors:    s.st.ProtocolErrors(),
		FaultsInjected:    s.FaultsInjected(),
		BreakerTrips:      s.st.BreakerTrips(),
		ControllerResets:  s.st.ControllerResets(),
		CommandsReplayed:  s.st.CommandsReplayed(),
		RecoveryTimeNs:    int64(s.st.RecoveryTime()),
		ControllerDead:    s.st.Dead(),
		DoorbellWrites:    s.st.DoorbellWrites(),
		CQBatches:         s.st.CQBatches(),
		IOQueueDepthPeak:  s.st.QueueDepthHighWater(),
		SpansOpened:       s.tracer.Opened(),
		SpansClosed:       s.tracer.Closed(),
		SpansDropped:      s.tracer.Dropped(),
		TraceLateEvents:   s.tracer.LateEvents(),
		BytesToPE:         s.st.BytesToPE(),
		BytesFromPE:       s.st.BytesFromPE(),
		PCIeCardRx:        s.plat.Card.PayloadRx(),
		PCIeSSDRx:         s.dev.Port().PayloadRx(),
		PCIeHostRx:        s.plat.Host.Port.PayloadRx(),
		SimTime:           int64(s.kernel.Now()),
		SimEvents:         s.kernel.EventsExecuted(),
		Tenants:           s.TenantStats(),
	}
}

// clusterStats maps the cluster's counters onto the system snapshot,
// summing the per-node Streamer counters into the shared fields.
func (s *System) clusterStats() Stats {
	cs := s.cluster.Stats()
	out := Stats{
		NodeDeaths:            cs.NodeDeaths,
		NodeRejoins:           cs.Rejoins,
		Failovers:             cs.Failovers,
		ReReplicatedBytes:     cs.ReReplicatedBytes,
		DegradedWindowNs:      cs.DegradedWindowNs,
		UnderReplicatedChunks: cs.UnderReplicatedChunks,
		DeadNodes:             cs.DeadNodes,
		SimTime:               cs.SimTime,
		SimEvents:             cs.SimEvents,
	}
	for i := 0; i < s.cluster.Nodes(); i++ {
		st := s.cluster.Node(i)
		out.CommandsSubmitted += st.CommandsSubmitted()
		out.CommandsRetired += st.CommandsRetired()
		out.CommandErrors += st.CommandErrors()
		out.CommandRetries += st.CommandRetries()
		out.CommandTimeouts += st.CommandTimeouts()
		out.CommandAborts += st.CommandAborts()
		out.ProtocolErrors += st.ProtocolErrors()
		out.BreakerTrips += st.BreakerTrips()
		out.ControllerResets += st.ControllerResets()
		out.CommandsReplayed += st.CommandsReplayed()
		out.RecoveryTimeNs += int64(st.RecoveryTime())
		out.BytesToPE += st.BytesToPE()
		out.BytesFromPE += st.BytesFromPE()
		if st.Dead() {
			out.ControllerDead = true
		}
	}
	return out
}

// TenantStats snapshots the per-tenant counters, or nil when the system was
// built without Options.Tenants.
func (s *System) TenantStats() []TenantStats {
	if s.hub == nil {
		return nil
	}
	return s.hub.Stats()
}

// TenantReadLatency returns tenant i's accept→complete read-latency
// histogram (the zero histogram without Options.Tenants).
func (s *System) TenantReadLatency(i int) LatencyHist {
	if s.hub == nil {
		return LatencyHist{}
	}
	return s.hub.ReadLatency(i)
}

// TenantWriteLatency returns tenant i's accept→complete write-latency
// histogram (the zero histogram without Options.Tenants).
func (s *System) TenantWriteLatency(i int) LatencyHist {
	if s.hub == nil {
		return LatencyHist{}
	}
	return s.hub.WriteLatency(i)
}

// FaultsInjected returns the number of faults the injector has fired, or 0
// when the system was built without Options.Faults.
func (s *System) FaultsInjected() int64 {
	if s.injector == nil {
		return 0
	}
	return s.injector.Injected()
}

// Capacity returns the simulated SSD capacity in bytes (in cluster mode,
// the cluster's logical capacity — one node's namespace, since replicas
// store chunks at their logical addresses).
func (s *System) Capacity() int64 {
	if s.cluster != nil {
		return s.cluster.Capacity()
	}
	return s.dev.Config().NamespaceBytes
}

// Resources returns the Table 1 FPGA resource estimate for this system's
// Streamer configuration (in cluster mode, for one node's Streamer).
func (s *System) Resources() fpga.Resources {
	if s.cluster != nil {
		return fpga.EstimateStreamer(s.cluster.Node(0).Config())
	}
	return fpga.EstimateStreamer(s.st.Config())
}

package snacc

import (
	"strings"
	"testing"

	"snacc/internal/sim"
)

// serveOpts is a small, fast serving workload for the facade tests.
func serveOpts() *ServeOptions {
	return &ServeOptions{
		Clients:   500,
		Requests:  300,
		SpanBytes: 32 * sim.MiB,
		Seed:      9,
	}
}

func TestServeFacade(t *testing.T) {
	sys := MustNewSystem(Options{Serve: serveOpts()})
	rep, err := sys.Serve()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Generated != 300 {
		t.Fatalf("generated %d, want 300", rep.Generated)
	}
	if rep.Generated != rep.Sent+rep.Dropped {
		t.Fatalf("conservation: generated %d != sent %d + dropped %d",
			rep.Generated, rep.Sent, rep.Dropped)
	}
	if rep.Sent != rep.Completed+rep.Failed+rep.Unmatched {
		t.Fatalf("conservation: sent %d != completed %d + failed %d + unmatched %d",
			rep.Sent, rep.Completed, rep.Failed, rep.Unmatched)
	}
	if rep.Completed == 0 || rep.Failed != 0 || rep.Malformed != 0 || rep.Rejected != 0 {
		t.Fatalf("clean run: %+v", rep)
	}
	if rep.GoodputMBps() <= 0 || rep.Latency.Count() != rep.Completed {
		t.Fatalf("goodput %.1f MB/s, %d latency samples for %d completions",
			rep.GoodputMBps(), rep.Latency.Count(), rep.Completed)
	}
	if rep.PeakConns < 1 || rep.PeakConns > 500 {
		t.Fatalf("peak conns %d outside (0, 500]", rep.PeakConns)
	}
	if rep.ConnStateBytes <= 0 {
		t.Fatalf("conn state bytes %d", rep.ConnStateBytes)
	}

	// A system serves once.
	if _, err := sys.Serve(); err == nil || !strings.Contains(err.Error(), "started") {
		t.Fatalf("second Serve: err = %v, want already-started", err)
	}
}

// TestServeFacadeTenants routes the serving tier through the virtualized
// hub: requests are stamped with tenant IDs and dispatched one lane per
// tenant, inside each tenant's LBA window.
func TestServeFacadeTenants(t *testing.T) {
	so := serveOpts()
	so.SpanBytes = 16 * sim.MiB // must fit the smaller tenant window
	sys := MustNewSystem(Options{
		Tenants: []TenantConfig{
			{Name: "a", Weight: 1, LBAStart: 0, LBABytes: 32 * sim.MiB},
			{Name: "b", Weight: 2, LBAStart: uint64(32 * sim.MiB), LBABytes: 16 * sim.MiB},
		},
		Serve: so,
	})
	rep, err := sys.Serve()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != rep.Sent || rep.Failed != 0 {
		t.Fatalf("tenant-backed run: completed %d of %d sent, failed %d",
			rep.Completed, rep.Sent, rep.Failed)
	}
}

// TestServeFacadeWorkersIdentity pins the public-API determinism contract:
// the serving report is identical whether the system runs on the serial
// kernel or with the client fleet in its own shard domain.
func TestServeFacadeWorkersIdentity(t *testing.T) {
	run := func(workers int) ServeReport {
		sys := MustNewSystem(Options{KernelWorkers: workers, Serve: serveOpts()})
		rep, err := sys.Serve()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	serial := run(0)
	for _, w := range []int{2, 4} {
		if got := run(w); got != serial {
			t.Fatalf("KernelWorkers=%d report diverged:\nserial: %+v\nworkers: %+v", w, serial, got)
		}
	}
}

func TestServeOptionErrors(t *testing.T) {
	if _, err := NewSystem(Options{
		Serve:   &ServeOptions{},
		Cluster: &ClusterOptions{Nodes: 2, Replication: 1, Quorum: 1},
	}); err == nil || !strings.Contains(err.Error(), "incompatible") {
		t.Fatalf("Serve+Cluster: err = %v, want incompatible", err)
	}
	bad := serveOpts()
	bad.IOBytes = 1000 // not a multiple of 512
	if _, err := NewSystem(Options{Serve: bad}); err == nil {
		t.Fatal("unaligned IOBytes accepted")
	}
	if _, err := MustNewSystem(Options{}).Serve(); err == nil ||
		!strings.Contains(err.Error(), "Options.Serve") {
		t.Fatalf("Serve without Options.Serve: err = %v", err)
	}
}

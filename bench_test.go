package snacc

import (
	"strings"
	"testing"

	"snacc/internal/bench"
	"snacc/internal/sim"
	"snacc/internal/streamer"
)

// One benchmark per table/figure of the paper's evaluation, plus the §7
// ablations. Each iteration rebuilds the simulated system and replays the
// paper's workload; the custom metrics carry the reproduced numbers
// (GB/s, µs, LUTs) so `go test -bench` output reads like the paper's
// figures. Absolute wall-clock ns/op measures the simulator, not the
// hardware — see EXPERIMENTS.md.

func metricName(label, unit string) string {
	label = strings.ReplaceAll(label, " ", "_")
	return label + "_" + unit
}

// BenchmarkFigure4aSequential regenerates Figure 4a (sequential NVMe
// bandwidth, all three Streamer variants + SPDK).
func BenchmarkFigure4aSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Fig4a(192 * sim.MiB)
		for _, r := range rows {
			b.ReportMetric(r.SeqReadGB, metricName(r.Label, "seqR_GBps"))
			b.ReportMetric(r.SeqWriteGB, metricName(r.Label, "seqW_GBps"))
		}
	}
}

// BenchmarkFigure4bRandom regenerates Figure 4b (random 4 KiB bandwidth).
func BenchmarkFigure4bRandom(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Fig4b(32 * sim.MiB)
		for _, r := range rows {
			b.ReportMetric(r.RandReadGB, metricName(r.Label, "randR_GBps"))
			b.ReportMetric(r.RandWriteGB, metricName(r.Label, "randW_GBps"))
		}
	}
}

// BenchmarkFigure4cLatency regenerates Figure 4c (4 KiB access latency).
func BenchmarkFigure4cLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Fig4c(100)
		for _, r := range rows {
			b.ReportMetric(r.ReadLatency.Micros(), metricName(r.Label, "read_us"))
			b.ReportMetric(r.WriteLatency.Micros(), metricName(r.Label, "write_us"))
		}
	}
}

// BenchmarkTable1Resources regenerates Table 1 (FPGA resources).
func BenchmarkTable1Resources(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table1()
		for _, r := range rows {
			b.ReportMetric(float64(r.Resources.LUT), metricName(r.Label, "LUT"))
			b.ReportMetric(float64(r.Resources.FF), metricName(r.Label, "FF"))
		}
	}
}

// BenchmarkFigure6CaseStudy regenerates Figure 6 (case-study bandwidth,
// all five implementations); Figure 7's traffic accounting rides along.
func BenchmarkFigure6CaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Fig6(96)
		for _, r := range rows {
			b.ReportMetric(r.GBps(), metricName(r.Variant, "GBps"))
			b.ReportMetric(r.FPS(), metricName(r.Variant, "fps"))
		}
	}
}

// BenchmarkFigure7PCIeTraffic regenerates Figure 7 (PCIe transfer volume
// per configuration), reported as multiples of the persisted payload.
func BenchmarkFigure7PCIeTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Fig7(64)
		for _, r := range rows {
			b.ReportMetric(float64(r.PCIeTotal)/float64(r.Bytes), metricName(r.Variant, "pcie_x_payload"))
		}
	}
}

// BenchmarkAblationQueueDepth sweeps the random-read queue depth (A1).
func BenchmarkAblationQueueDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.AblationQD([]int{64, 256}, 16*sim.MiB)
		for _, r := range rows {
			b.ReportMetric(r.SPDKGB, metricName("SPDK_QD", "GBps"))
			b.ReportMetric(r.SNAccGB, metricName("SNAcc_QD", "GBps"))
		}
	}
}

// BenchmarkAblationOutOfOrder compares retirement policies (A2).
func BenchmarkAblationOutOfOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.AblationOOO(16 * sim.MiB)
		b.ReportMetric(rows[0].RandReadGB, "inorder_randR_GBps")
		b.ReportMetric(rows[1].RandReadGB, "ooo_randR_GBps")
	}
}

// BenchmarkAblationMultiSSD scales Streamer+SSD pairs (A3).
func BenchmarkAblationMultiSSD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.AblationMultiSSD([]int{1, 4}, 64*sim.MiB)
		b.ReportMetric(rows[0].SeqWriteGB, "ssd1_seqW_GBps")
		b.ReportMetric(rows[1].SeqWriteGB, "ssd4_seqW_GBps")
	}
}

// BenchmarkAblationGen5 projects a PCIe 5.0 SSD (A4).
func BenchmarkAblationGen5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.AblationGen5(128 * sim.MiB)
		b.ReportMetric(rows[1].SeqReadGB, "gen5_seqR_GBps")
		b.ReportMetric(rows[1].SeqWriteGB, "gen5_seqW_GBps")
	}
}

// BenchmarkAblationDRAMController quantifies the turnaround penalty (A5).
func BenchmarkAblationDRAMController(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.AblationDRAM(128 * sim.MiB)
		b.ReportMetric(rows[0].SeqWriteGB, "single_ctrl_seqW_GBps")
		b.ReportMetric(rows[1].SeqWriteGB, "dual_ctrl_seqW_GBps")
	}
}

// BenchmarkStreamerSeqWrite micro-benchmarks the core write path per
// variant (simulator throughput, plus the reproduced GB/s metric).
func BenchmarkStreamerSeqWrite(b *testing.B) {
	for _, v := range []Variant{URAM, OnboardDRAM, HostDRAM} {
		b.Run(v.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f := false
				sys := MustNewSystem(Options{Variant: v, Functional: &f})
				var gbps float64
				sys.Execute(func(h *Handle) {
					start := h.Now()
					h.WriteTimed(0, 128*sim.MiB)
					gbps = float64(128*sim.MiB) / float64(h.Now()-start)
				})
				b.ReportMetric(gbps, "GBps")
			}
		})
	}
}

// BenchmarkSimulatorEventRate measures raw simulator speed: simulated
// bytes moved per wall second on the heaviest path (SSD write fetches).
func BenchmarkSimulatorEventRate(b *testing.B) {
	f := false
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys := MustNewSystem(Options{Variant: HostDRAM, Functional: &f})
		sys.Execute(func(h *Handle) { h.WriteTimed(0, 64*sim.MiB) })
	}
	b.SetBytes(64 * sim.MiB)
}

var _ = streamer.URAM // keep the import for the Variant aliases

// BenchmarkAblationHBM stages the on-card buffers in HBM (A6).
func BenchmarkAblationHBM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.AblationHBM(128 * sim.MiB)
		b.ReportMetric(rows[0].SeqWriteGB, "ddr4_seqW_GBps")
		b.ReportMetric(rows[1].SeqWriteGB, "hbm_seqW_GBps")
	}
}

// BenchmarkAblationStripedCaseStudy runs the §7 multi-SSD case study (A7):
// three striped SSDs saturate the 100 G link.
func BenchmarkAblationStripedCaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Fig6Striped([]int{1, 3}, 64)
		b.ReportMetric(rows[0].GBps(), "striped1_GBps")
		b.ReportMetric(rows[1].GBps(), "striped3_GBps")
	}
}

// BenchmarkAblationMTU sweeps the Ethernet frame payload for the
// network-bound striped pipeline (A8).
func BenchmarkAblationMTU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.AblationMTU([]int64{1500, 9000}, 64)
		b.ReportMetric(rows[0].CaseGB, "mtu1500_GBps")
		b.ReportMetric(rows[1].CaseGB, "mtu9000_GBps")
	}
}

// BenchmarkAblationQueuePairs scales Streamers over queue pairs on one SSD
// (A9).
func BenchmarkAblationQueuePairs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.AblationQP([]int{1, 4}, 16*sim.MiB)
		b.ReportMetric(rows[0].RandReadGB, "qp1_randR_GBps")
		b.ReportMetric(rows[1].RandReadGB, "qp4_randR_GBps")
	}
}

package snacc

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestReplayTraceAPI(t *testing.T) {
	ops, err := ParseTrace(strings.NewReader("R 0 1M\nW 1M 1M\nR 2M 1M\n"))
	if err != nil {
		t.Fatal(err)
	}
	f := false
	sys := MustNewSystem(Options{Variant: URAM, Functional: &f})
	res, err := sys.ReplayTrace("api", ops)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reads != 2 || res.Writes != 1 {
		t.Fatalf("op mix %d/%d, want 2/1", res.Reads, res.Writes)
	}
	if got := res.BytesRead + res.BytesWritten; got != 3<<20 {
		t.Fatalf("moved %d bytes, want 3 MiB", got)
	}
}

// TestSpanMonotoneAcrossKernelWorkers extends the span-invariant property
// tests to multi-worker kernel runs: under the sharded scheduler, every
// traced command must still close exactly once with monotone stage
// timestamps, and the span set must match the serial run exactly.
func TestSpanMonotoneAcrossKernelWorkers(t *testing.T) {
	f := false
	run := func(workers int) []Span {
		sys := MustNewSystem(Options{Variant: URAM, Functional: &f,
			Trace: &TraceOptions{}, KernelWorkers: workers})
		sys.Execute(func(h *Handle) {
			h.WriteTimed(0, 4<<20)
			h.ReadTimed(0, 4<<20)
		})
		st := sys.Stats()
		if st.SpansOpened == 0 || st.SpansOpened != st.SpansClosed {
			t.Fatalf("workers=%d: span leak (opened %d, closed %d)",
				workers, st.SpansOpened, st.SpansClosed)
		}
		spans := sys.Spans()
		for _, sp := range spans {
			if !sp.Monotone() {
				t.Errorf("workers=%d: span %d has non-monotone stages %v",
					workers, sp.ID, sp.Stages)
			}
		}
		return spans
	}
	serial := run(1)
	for _, w := range []int{2, 4} {
		if got := run(w); !reflect.DeepEqual(got, serial) {
			t.Errorf("workers=%d: span set differs from serial run", w)
		}
	}
}

func TestRecordAndFormatTraceAPI(t *testing.T) {
	spec := DefaultWorkload()
	spec.TotalBytes = 1 << 20
	ops, err := RecordTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := FormatTrace(&buf, ops); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ops) {
		t.Fatalf("round trip lost ops: %d vs %d", len(back), len(ops))
	}
}

package snacc

import (
	"bytes"
	"strings"
	"testing"
)

func TestReplayTraceAPI(t *testing.T) {
	ops, err := ParseTrace(strings.NewReader("R 0 1M\nW 1M 1M\nR 2M 1M\n"))
	if err != nil {
		t.Fatal(err)
	}
	f := false
	sys := MustNewSystem(Options{Variant: URAM, Functional: &f})
	res, err := sys.ReplayTrace("api", ops)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reads != 2 || res.Writes != 1 {
		t.Fatalf("op mix %d/%d, want 2/1", res.Reads, res.Writes)
	}
	if got := res.BytesRead + res.BytesWritten; got != 3<<20 {
		t.Fatalf("moved %d bytes, want 3 MiB", got)
	}
}

func TestRecordAndFormatTraceAPI(t *testing.T) {
	spec := DefaultWorkload()
	spec.TotalBytes = 1 << 20
	ops, err := RecordTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := FormatTrace(&buf, ops); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ops) {
		t.Fatalf("round trip lost ops: %d vs %d", len(back), len(ops))
	}
}

module snacc

go 1.22

package snacc_test

import (
	"bytes"
	"fmt"
	"strings"

	"snacc"
)

// The simplest possible use: build a system, write through the Streamer's
// AXI-stream interface, read back off the simulated NAND media.
func ExampleSystem_Execute() {
	sys := snacc.MustNewSystem(snacc.Options{Variant: snacc.URAM})
	payload := bytes.Repeat([]byte{0x42}, 4096)
	sys.Execute(func(h *snacc.Handle) {
		h.Write(0, payload)
		back := h.Read(0, 4096)
		fmt.Println("intact:", bytes.Equal(back, payload))
	})
	st := sys.Stats()
	fmt.Println("commands retired:", st.CommandsRetired, "errors:", st.CommandErrors)
	// Output:
	// intact: true
	// commands retired: 2 errors: 0
}

// Timing-only mode measures bandwidth without moving content. The same
// seed always produces the same simulated timeline.
func ExampleSystem_Execute_timing() {
	f := false
	sys := snacc.MustNewSystem(snacc.Options{Variant: snacc.HostDRAM, Functional: &f, Seed: 1})
	var gbps float64
	sys.Execute(func(h *snacc.Handle) {
		const n = 256 << 20 // past the SSD write buffer's absorption ramp
		start := h.Now()
		h.WriteTimed(0, n)
		gbps = float64(n) / float64(h.Now()-start)
	})
	fmt.Println("host-DRAM variant sequential write ~6 GB/s:", gbps > 5.5 && gbps < 6.8)
	// Output:
	// host-DRAM variant sequential write ~6 GB/s: true
}

// Table 1 resource estimates come from the component cost book.
func ExampleSystem_Resources() {
	sys := snacc.MustNewSystem(snacc.Options{Variant: snacc.URAM})
	r := sys.Resources()
	fmt.Printf("LUT=%d FF=%d URAM blocks=%d\n", r.LUT, r.FF, r.URAMBlocks)
	// Output:
	// LUT=7260 FF=8388 URAM blocks=128
}

// Workload generators drive mixed access patterns through the Streamer.
func ExampleSystem_RunWorkload() {
	sys := snacc.MustNewSystem(snacc.Options{Variant: snacc.URAM})
	spec := snacc.DefaultWorkload()
	spec.TotalBytes = 8 << 20
	res, err := sys.RunWorkload(spec)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("all bytes moved:", res.BytesRead+res.BytesWritten == spec.TotalBytes)
	fmt.Println("mixed:", res.Reads > 0 && res.Writes > 0)
	// Output:
	// all bytes moved: true
	// mixed: true
}

// TableOne regenerates the paper's resource table programmatically.
func ExampleTableOne() {
	rows := snacc.TableOne()
	for _, r := range rows {
		fmt.Printf("%s: %d LUTs\n", r.Label, r.Resources.LUT)
	}
	// Output:
	// URAM: 7260 LUTs
	// On-board DRAM: 14063 LUTs
	// Host DRAM: 12228 LUTs
}

// I/O traces round-trip through a text format and replay through the
// Streamer, so captured workloads and synthetic ones share one path.
func ExampleSystem_ReplayTrace() {
	ops, err := snacc.ParseTrace(strings.NewReader(`
# three sequential 1 MiB reads, then a 4 KiB write
R 0 1M
R 1M 1M
R 2M 1M
W 4M 4096
`))
	if err != nil {
		fmt.Println("parse:", err)
		return
	}
	sys := snacc.MustNewSystem(snacc.Options{Variant: snacc.URAM})
	res, err := sys.ReplayTrace("example", ops)
	if err != nil {
		fmt.Println("replay:", err)
		return
	}
	fmt.Printf("%d reads, %d writes, %d bytes\n",
		res.Reads, res.Writes, res.BytesRead+res.BytesWritten)
	// Output:
	// 3 reads, 1 writes, 3149824 bytes
}

package snacc

import (
	"io"

	"snacc/internal/sim"
	"snacc/internal/workload"
)

// Workload generator re-exports: deterministic sequential / random /
// Zipfian / mixed access patterns driven through the Streamer.
type (
	// WorkloadSpec describes a generated workload.
	WorkloadSpec = workload.Spec
	// WorkloadResult summarizes a workload run.
	WorkloadResult = workload.Result
	// WorkloadPattern selects the address sequence.
	WorkloadPattern = workload.Pattern
)

// Workload patterns.
const (
	SequentialPattern = workload.Sequential
	RandomPattern     = workload.Random
	ZipfianPattern    = workload.Zipfian
)

// RunWorkload executes the workload on this system and returns its
// throughput summary.
func (s *System) RunWorkload(spec WorkloadSpec) (WorkloadResult, error) {
	var res WorkloadResult
	var err error
	s.Execute(func(h *Handle) {
		res, err = workload.Run(h.p, s.client, spec)
	})
	return res, err
}

// TraceOp is one operation of a recorded I/O trace; see ParseTrace for the
// file format.
type TraceOp = workload.TraceOp

// ParseTrace reads an I/O trace: one `R|W <offset> <length> [gap-µs]` line
// per operation, '#' comments, K/M/G binary suffixes.
func ParseTrace(r io.Reader) ([]TraceOp, error) { return workload.ParseTrace(r) }

// FormatTrace writes ops in the trace file format ParseTrace reads.
func FormatTrace(w io.Writer, ops []TraceOp) error { return workload.FormatTrace(w, ops) }

// RecordTrace materializes a generated workload as a replayable trace.
func RecordTrace(spec WorkloadSpec) ([]TraceOp, error) { return workload.RecordTrace(spec) }

// ReplayTrace replays a recorded I/O trace through this system's Streamer,
// honoring per-operation arrival gaps (open loop) or running closed-loop
// when gaps are zero.
func (s *System) ReplayTrace(name string, ops []TraceOp) (WorkloadResult, error) {
	var res WorkloadResult
	var err error
	s.Execute(func(h *Handle) {
		res, err = workload.Replay(h.p, s.client, name, ops)
	})
	return res, err
}

// DefaultWorkload returns a ready-to-run spec: 70/30 random read/write of
// 4 KiB operations over 1 GiB of address space.
func DefaultWorkload() WorkloadSpec {
	return WorkloadSpec{
		Name:         "mixed-70-30",
		Pattern:      workload.Random,
		ReadFraction: 0.7,
		IOBytes:      4096,
		SpanBytes:    sim.GiB,
		TotalBytes:   32 * sim.MiB,
		Seed:         1,
	}
}

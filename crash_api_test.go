package snacc

import (
	"bytes"
	"fmt"
	"testing"

	"snacc/internal/sim"
)

// TestRandomizedDataIntegrityCrashRecovery is the crash-and-recover variant
// of TestRandomizedDataIntegrity: the controller crashes at every Nth
// executed command mid-stream, the recovery ladder resets it and replays
// the in-flight window, and every read must still match the byte-exact
// shadow across all three buffer variants. Each variant also runs with the
// submission path sharded over four coalescing queue pairs, where the
// replay must reconstruct every queue's ring in global submission order and
// the Nth-command crash rule keeps counting across queues.
func TestRandomizedDataIntegrityCrashRecovery(t *testing.T) {
	for _, v := range []Variant{URAM, OnboardDRAM, HostDRAM} {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			runCrashIntegrity(t, Options{Variant: v})
		})
		t.Run(v.String()+"-4q", func(t *testing.T) {
			runCrashIntegrity(t, Options{Variant: v, IOQueues: 4, DoorbellBatch: 8})
		})
	}
}

func runCrashIntegrity(t *testing.T, opts Options) {
	fn := true
	opts.Functional = &fn
	opts.Faults = &FaultOptions{CrashEveryNCmds: 19}
	sys := MustNewSystem(opts)
	const span = 4 << 20
	shadow := make([]byte, span)
	rng := sim.NewRand(uint64(opts.Variant) + 303)
	var failure string
	sys.Execute(func(h *Handle) {
		for op := 0; op < 120; op++ {
			n := (rng.Int63n(96) + 1) * 512
			addr := uint64(rng.Int63n((span-n)/512)) * 512
			if rng.Float64() < 0.55 {
				data := make([]byte, n)
				for i := range data {
					data[i] = byte(rng.Int63n(256))
				}
				h.Write(addr, data)
				copy(shadow[addr:], data)
			} else {
				got := h.Read(addr, n)
				want := shadow[addr : addr+uint64(n)]
				if !bytes.Equal(got, want) {
					failure = fmt.Sprintf("op %d: read %d@%#x diverged from shadow (first diff at %d)",
						op, n, addr, firstDiff(got, want))
					return
				}
			}
		}
		got := h.Read(0, span)
		if !bytes.Equal(got, shadow) {
			failure = fmt.Sprintf("final readback diverged at byte %d", firstDiff(got, shadow))
		}
	})
	if failure != "" {
		t.Fatal(failure)
	}
	st := sys.Stats()
	if st.ControllerResets == 0 || st.BreakerTrips == 0 {
		t.Fatalf("trips/resets = %d/%d; the workload crashed no controller, test is vacuous",
			st.BreakerTrips, st.ControllerResets)
	}
	if st.CommandsReplayed == 0 {
		t.Error("no commands replayed across the injected crashes")
	}
	if st.ControllerDead {
		t.Error("controller declared dead despite a working reset path")
	}
	if st.CommandAborts != 0 {
		t.Errorf("aborts = %d across recovered crashes, want 0", st.CommandAborts)
	}
}

// TestCrashRecoveryStatsReported pins the new Stats plumbing end to end:
// one injected crash must show up as a trip, a reset, a replayed window and
// a non-zero time-to-recover.
func TestCrashRecoveryStatsReported(t *testing.T) {
	sys := MustNewSystem(Options{Faults: &FaultOptions{CrashEveryNCmds: 8}})
	sys.Execute(func(h *Handle) {
		h.WriteTimed(0, 16*1<<20)
	})
	st := sys.Stats()
	if st.BreakerTrips == 0 || st.ControllerResets == 0 {
		t.Fatalf("trips/resets = %d/%d, want both > 0", st.BreakerTrips, st.ControllerResets)
	}
	if st.CommandsReplayed == 0 {
		t.Error("CommandsReplayed = 0 across a mid-burst crash")
	}
	if st.RecoveryTimeNs <= 0 {
		t.Error("RecoveryTimeNs not accounted")
	}
	if st.ControllerDead {
		t.Error("controller marked dead after successful recovery")
	}
	if st.FaultsInjected == 0 {
		t.Error("injector reported no firings")
	}
}

// TestCrashEveryCommandRejected: N=1 can never make forward progress, so
// the constructor must refuse it rather than hand back a livelocking
// system.
func TestCrashEveryCommandRejected(t *testing.T) {
	if _, err := NewSystem(Options{Faults: &FaultOptions{CrashEveryNCmds: 1}}); err == nil {
		t.Fatal("CrashEveryNCmds = 1 accepted")
	}
}

// TestSurpriseRemovalTerminal: a removed controller exhausts its resets and
// surfaces as a terminal error flag plus ControllerDead — never a hang.
func TestSurpriseRemovalTerminal(t *testing.T) {
	sys := MustNewSystem(Options{Faults: &FaultOptions{RemoveAtCommand: 4}})
	sawErr := false
	sys.Execute(func(h *Handle) {
		if err := h.WriteErr(0, make([]byte, 8<<20)); err != nil {
			sawErr = true
		}
	})
	if !sawErr {
		t.Error("write across a surprise removal reported no error")
	}
	st := sys.Stats()
	if !st.ControllerDead {
		t.Error("removed controller not reported dead")
	}
	if st.ControllerResets == 0 {
		t.Error("no reset attempts against the removed controller")
	}
}

// Multissd demonstrates the §7 "Multi-SSD Support" extension: several NVMe
// Streamer instances on one FPGA card, each with its own submission and
// completion queues toward its own SSD, writing concurrently. Aggregate
// bandwidth scales with the SSD count until the card's PCIe Gen3 x16 link
// saturates near 15 GB/s — exactly the saturation behaviour §7 predicts
// multi-SSD setups will exhibit (and mitigate with faster links). The final
// table shows degraded operation: a striped member surprise-removed
// mid-stream fails only its own stripes while the survivors keep streaming.
//
//	go run ./examples/multissd
package main

import (
	"fmt"

	"snacc"
)

func main() {
	fmt.Println("scaling NVMe Streamer + SSD pairs on one Alveo U280...")
	rows := snacc.AblationMultiSSD([]int{1, 2, 3, 4}, 0)
	fmt.Println(snacc.RenderAblationMultiSSD(rows))

	fmt.Println("and the projected remedy, PCIe 5.0 SSDs (§7):")
	fmt.Println(snacc.RenderAblationGen5(snacc.AblationGen5(0)))

	fmt.Println("degraded operation: one member dies mid-stream, survivors keep streaming:")
	fmt.Println(snacc.RenderStripedDegraded(snacc.StripedDegraded(3, 0)))
}

// Quickstart: build a simulated SNAcc system (Alveo U280 + Samsung 990 PRO
// model + NVMe Streamer), write data to the SSD through the Streamer's
// AXI-stream interface the way a user PE would, read it back, and print the
// system counters.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"

	"snacc"
)

func main() {
	// URAM variant, functional mode: payload bytes travel the whole path —
	// AXI streams → staging buffer → PCIe P2P → NVMe → NAND media.
	sys, err := snacc.NewSystem(snacc.Options{Variant: snacc.URAM})
	if err != nil {
		log.Fatalf("system init: %v", err)
	}
	fmt.Printf("system up: %d-byte SSD, streamer resources: %s\n",
		sys.Capacity(), sys.Resources())

	payload := make([]byte, 1<<20) // one full NVMe command worth
	for i := range payload {
		payload[i] = byte(i * 31)
	}

	sys.Execute(func(h *snacc.Handle) {
		start := h.Now()
		h.Write(4096, payload)
		wrote := h.Now()
		got := h.Read(4096, int64(len(payload)))
		read := h.Now()

		if !bytes.Equal(got, payload) {
			log.Fatal("read-back mismatch")
		}
		fmt.Printf("wrote 1 MiB in %.1f us (%.2f GB/s)\n",
			float64(wrote-start)/1e3, float64(len(payload))/float64(wrote-start))
		fmt.Printf("read it back in %.1f us (%.2f GB/s), contents verified\n",
			float64(read-wrote)/1e3, float64(len(payload))/float64(read-wrote))
	})

	st := sys.Stats()
	fmt.Printf("NVMe commands: %d submitted, %d retired, %d errors\n",
		st.CommandsSubmitted, st.CommandsRetired, st.CommandErrors)
	fmt.Printf("PCIe payload into SSD: %d bytes; into card: %d bytes\n",
		st.PCIeSSDRx, st.PCIeCardRx)
}

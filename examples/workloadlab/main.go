// Workloadlab compares database-style access patterns across the three
// NVMe Streamer variants using the workload generator: large sequential
// scans, 4 KiB uniform-random point operations, Zipfian hot-key traffic,
// and a 70/30 mixed load. It demonstrates the paper's central performance
// contrast — streaming workloads fly, random reads collapse under in-order
// retirement (§5.2) — on workloads richer than the microbenchmarks.
//
//	go run ./examples/workloadlab
package main

import (
	"fmt"

	"snacc"
)

func main() {
	specs := []snacc.WorkloadSpec{
		{Name: "scan", Pattern: snacc.SequentialPattern, ReadFraction: 1,
			IOBytes: 1 << 20, SpanBytes: 1 << 30, TotalBytes: 96 << 20, Seed: 1},
		{Name: "ingest", Pattern: snacc.SequentialPattern, ReadFraction: 0,
			IOBytes: 1 << 20, SpanBytes: 1 << 30, TotalBytes: 96 << 20, Seed: 2},
		{Name: "point-read", Pattern: snacc.RandomPattern, ReadFraction: 1,
			IOBytes: 4096, SpanBytes: 1 << 30, TotalBytes: 16 << 20, Seed: 3},
		{Name: "zipf-mixed", Pattern: snacc.ZipfianPattern, ReadFraction: 0.7,
			IOBytes: 4096, SpanBytes: 1 << 30, TotalBytes: 16 << 20,
			ZipfTheta: 0.99, ZipfBuckets: 128, Seed: 4},
	}

	f := false
	fmt.Printf("%-12s", "workload")
	variants := []snacc.Variant{snacc.URAM, snacc.OnboardDRAM, snacc.HostDRAM}
	for _, v := range variants {
		fmt.Printf("%16s", v)
	}
	fmt.Println()
	for _, spec := range specs {
		fmt.Printf("%-12s", spec.Name)
		for _, v := range variants {
			sys := snacc.MustNewSystem(snacc.Options{Variant: v, Functional: &f})
			res, err := sys.RunWorkload(spec)
			if err != nil {
				fmt.Printf("%16s", "error")
				continue
			}
			fmt.Printf("%11.2f GB/s", res.GBps())
		}
		fmt.Println()
	}
	fmt.Println("\nnote: point reads sit near 1.6 GB/s on every variant — the in-order")
	fmt.Println("retirement ceiling of §5.2; sequential traffic reaches the Figure 4a levels.")
}

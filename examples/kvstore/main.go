// Kvstore demonstrates the paper's motivating use case — "network
// accessible databases ... often paired with pre-processing before storing
// results" (§1) — as a log-structured key-value store persisted through
// the NVMe Streamer: puts append 512-byte-aligned records to an on-SSD
// log, an in-fabric index maps keys to log offsets, and gets stream the
// records back. Everything after setup runs on the simulated FPGA with no
// host involvement.
//
//	go run ./examples/kvstore
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"log"

	"snacc"
)

// record layout: [8B key length][8B value length][key][value][padding].
const recordAlign = 512

type kvStore struct {
	h      *snacc.Handle
	cursor uint64
	index  map[string]indexEntry
	puts   int
}

type indexEntry struct {
	off  uint64
	size int64
}

func newKV(h *snacc.Handle) *kvStore {
	return &kvStore{h: h, index: make(map[string]indexEntry)}
}

func (kv *kvStore) put(key string, value []byte) {
	rec := make([]byte, 16+len(key)+len(value))
	binary.LittleEndian.PutUint64(rec[0:], uint64(len(key)))
	binary.LittleEndian.PutUint64(rec[8:], uint64(len(value)))
	copy(rec[16:], key)
	copy(rec[16+len(key):], value)
	padded := (int64(len(rec)) + recordAlign - 1) &^ (recordAlign - 1)
	buf := make([]byte, padded)
	copy(buf, rec)
	kv.h.Write(kv.cursor, buf)
	kv.index[key] = indexEntry{off: kv.cursor, size: padded}
	kv.cursor += uint64(padded)
	kv.puts++
}

func (kv *kvStore) get(key string) ([]byte, bool) {
	e, ok := kv.index[key]
	if !ok {
		return nil, false
	}
	raw := kv.h.Read(e.off, e.size)
	klen := binary.LittleEndian.Uint64(raw[0:])
	vlen := binary.LittleEndian.Uint64(raw[8:])
	return raw[16+klen : 16+klen+vlen], true
}

func main() {
	sys, err := snacc.NewSystem(snacc.Options{Variant: snacc.HostDRAM})
	if err != nil {
		log.Fatalf("init: %v", err)
	}

	sys.Execute(func(h *snacc.Handle) {
		kv := newKV(h)
		start := h.Now()

		// Ingest a batch of documents, the way a pre-processing pipeline
		// would persist enriched records.
		const n = 512
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("doc/%04d", i)
			val := bytes.Repeat([]byte{byte(i)}, 1024+i*7%2048)
			kv.put(key, val)
		}
		ingested := h.Now()

		// Point lookups, including overwrite semantics.
		kv.put("doc/0001", []byte("updated-value"))
		if v, ok := kv.get("doc/0001"); !ok || string(v) != "updated-value" {
			log.Fatal("overwrite lookup failed")
		}
		for _, probe := range []int{0, 100, 511} {
			key := fmt.Sprintf("doc/%04d", probe)
			v, ok := kv.get(key)
			if !ok {
				log.Fatalf("missing key %s", key)
			}
			want := bytes.Repeat([]byte{byte(probe)}, 1024+probe*7%2048)
			if !bytes.Equal(v, want) {
				log.Fatalf("value mismatch for %s", key)
			}
		}
		if _, ok := kv.get("doc/9999"); ok {
			log.Fatal("phantom key")
		}
		done := h.Now()

		fmt.Printf("ingested %d records (%d bytes of log) in %.2f ms\n",
			kv.puts, kv.cursor, float64(ingested-start)/1e6)
		fmt.Printf("lookups verified in %.2f ms; log cursor at %d\n",
			float64(done-ingested)/1e6, kv.cursor)
	})

	st := sys.Stats()
	fmt.Printf("NVMe commands: %d, errors: %d\n", st.CommandsRetired, st.CommandErrors)
}

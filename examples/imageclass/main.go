// Imageclass runs the paper's §6 case study end to end: a 100 G Ethernet
// image stream is received, downscaled and classified on the simulated
// FPGA, and the originals plus classifications are persisted to the NVMe
// SSD — through each of the three SNAcc Streamer variants and through the
// SPDK and GPU reference implementations. The output reproduces Figures 6
// and 7.
//
//	go run ./examples/imageclass [-images N]
package main

import (
	"flag"
	"fmt"

	"snacc"
)

func main() {
	images := flag.Int("images", 192, "stream length (the paper uses 16384 ≈ 147 GB)")
	flag.Parse()

	fmt.Printf("streaming %d images (~9 MB each) through five pipelines...\n\n", *images)
	results := snacc.Figure6(*images)
	fmt.Println(snacc.RenderFigure6(results))
	fmt.Println(snacc.RenderFigure7(results))

	fmt.Println("§6.3 considerations beyond bandwidth:")
	for _, r := range results {
		cpu := "host CPU idle after setup (autonomous FPGA pipeline)"
		if r.BusyPolling {
			cpu = "one host core at 100% moving data"
		}
		fmt.Printf("  %-20s %s; Ethernet pauses honored: %d\n", r.Variant, cpu, r.EthernetPauses)
	}
}
